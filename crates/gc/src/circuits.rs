//! Ring-arithmetic circuit library.
//!
//! All words are little-endian over ℤ_{2^ℓ}. Because the ring modulus is a
//! power of two, the adder and subtractor simply drop the top carry/borrow —
//! this is exactly the paper's observation that "there will be no extra cost
//! required to complete the non-XOR gates corresponding to the modulo
//! operation".

use crate::circuit::{CircuitBuilder, WireId, Word};
use crate::Circuit;

/// ℓ-bit addition mod 2^ℓ (ℓ − 1 AND gates: the last carry is dropped).
///
/// Full-adder: `s = a ⊕ b ⊕ c`, `c' = ((a⊕c) ∧ (b⊕c)) ⊕ c`.
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn add(b: &mut CircuitBuilder, x: &Word, y: &Word) -> Word {
    assert_eq!(x.bits(), y.bits(), "word width mismatch");
    let n = x.bits();
    let mut out = Vec::with_capacity(n);
    let mut carry: Option<WireId> = None;
    for i in 0..n {
        let (a, bb) = (x.0[i], y.0[i]);
        match carry {
            None => {
                out.push(b.xor(a, bb));
                if i + 1 < n {
                    carry = Some(b.and(a, bb));
                }
            }
            Some(c) => {
                let axc = b.xor(a, c);
                let s = b.xor(axc, bb);
                out.push(s);
                if i + 1 < n {
                    let bxc = b.xor(bb, c);
                    let t = b.and(axc, bxc);
                    carry = Some(b.xor(t, c));
                }
            }
        }
    }
    Word(out)
}

/// ℓ-bit subtraction mod 2^ℓ (ℓ − 1 AND gates).
///
/// Borrow recurrence: `d = a ⊕ b ⊕ bor`, `bor' = ((¬a⊕bor) ∧ (b⊕bor)) ⊕ bor`
/// (majority of ¬a, b, bor).
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn sub(b: &mut CircuitBuilder, x: &Word, y: &Word) -> Word {
    assert_eq!(x.bits(), y.bits(), "word width mismatch");
    let n = x.bits();
    let mut out = Vec::with_capacity(n);
    let mut borrow: Option<WireId> = None;
    for i in 0..n {
        let (a, bb) = (x.0[i], y.0[i]);
        match borrow {
            None => {
                out.push(b.xor(a, bb));
                if i + 1 < n {
                    let na = b.inv(a);
                    borrow = Some(b.and(na, bb));
                }
            }
            Some(bor) => {
                let axb = b.xor(a, bb);
                let d = b.xor(axb, bor);
                out.push(d);
                if i + 1 < n {
                    let na = b.inv(a);
                    let naxbor = b.xor(na, bor);
                    let bxbor = b.xor(bb, bor);
                    let t = b.and(naxbor, bxbor);
                    borrow = Some(b.xor(t, bor));
                }
            }
        }
    }
    Word(out)
}

/// Per-bit multiplexer: `sel ? x : y` (ℓ AND gates).
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn mux(b: &mut CircuitBuilder, sel: WireId, x: &Word, y: &Word) -> Word {
    assert_eq!(x.bits(), y.bits(), "word width mismatch");
    Word(
        x.0.iter()
            .zip(&y.0)
            .map(|(&xi, &yi)| {
                let d = b.xor(xi, yi);
                let m = b.and(sel, d);
                b.xor(m, yi)
            })
            .collect(),
    )
}

/// Bitwise AND of every bit of `x` with a single control bit (ℓ ANDs).
pub fn gate_word(b: &mut CircuitBuilder, ctrl: WireId, x: &Word) -> Word {
    Word(x.0.iter().map(|&xi| b.and(ctrl, xi)).collect())
}

/// ReLU of a two's-complement word: zero if the sign bit is set, otherwise
/// the value itself (ℓ AND gates).
pub fn relu(b: &mut CircuitBuilder, x: &Word) -> Word {
    let non_neg = b.inv(x.msb());
    gate_word(b, non_neg, x)
}

/// The sign bit (`1` iff `x < 0` under two's complement). Free.
#[must_use]
pub fn is_negative(x: &Word) -> WireId {
    x.msb()
}

/// Algorithm 2's circuit for `f = ReLU` (the fully-oblivious activation):
///
/// * evaluator (server) input: share `y₀`,
/// * garbler (client) inputs: share `y₁` and fresh mask `z₁`,
/// * output to evaluator: `z₀ = ReLU(y₀ + y₁) − z₁  (mod 2^ℓ)`.
///
/// AND-gate cost: (ℓ−1) add + ℓ relu + (ℓ−1) sub = 3ℓ − 2.
#[must_use]
pub fn relu_reshare_circuit(bits: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1 = b.garbler_word(bits);
    let z1 = b.garbler_word(bits);
    let y0 = b.evaluator_word(bits);
    let y = add(&mut b, &y0, &y1);
    let r = relu(&mut b, &y);
    let z0 = sub(&mut b, &r, &z1);
    b.build(z0.0)
}

/// Phase 1 of the paper's *optimized* ReLU: only the comparison
/// `y₀ + y₁ ≥ 0` is computed inside the circuit and revealed (ℓ−1 ANDs).
///
/// Inputs: garbler `y₁`, evaluator `y₀`; output: one bit (1 iff the neuron
/// is non-negative). Revealing it is the paper's trade-off: negative
/// neurons then skip the reconstruction circuit entirely.
#[must_use]
pub fn relu_sign_circuit(bits: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1 = b.garbler_word(bits);
    let y0 = b.evaluator_word(bits);
    let y = add(&mut b, &y0, &y1);
    let non_neg = b.inv(y.msb());
    b.build(vec![non_neg])
}

/// Phase 2 of the optimized ReLU, run only for non-negative neurons:
/// reconstruct and re-share, `z₀ = (y₀ + y₁) − z₁` (2ℓ−2 ANDs).
#[must_use]
pub fn reconstruct_reshare_circuit(bits: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1 = b.garbler_word(bits);
    let z1 = b.garbler_word(bits);
    let y0 = b.evaluator_word(bits);
    let y = add(&mut b, &y0, &y1);
    let z0 = sub(&mut b, &y, &z1);
    b.build(z0.0)
}

/// A generic activation circuit à la Algorithm 2 for any bitwise function
/// `f` expressible over the reconstructed word. Provided with `f = max(0,·)`
/// this equals [`relu_reshare_circuit`]; it also serves for variants such as
/// leaky-style gating in tests.
pub fn activation_circuit<F>(bits: usize, f: F) -> Circuit
where
    F: FnOnce(&mut CircuitBuilder, &Word) -> Word,
{
    let mut b = CircuitBuilder::new();
    let y1 = b.garbler_word(bits);
    let z1 = b.garbler_word(bits);
    let y0 = b.evaluator_word(bits);
    let y = add(&mut b, &y0, &y1);
    let fy = f(&mut b, &y);
    let z0 = sub(&mut b, &fy, &z1);
    b.build(z0.0)
}

/// Arithmetic shift right by `k` bits — free (pure rewiring): low bits are
/// dropped and the sign wire is replicated at the top.
///
/// # Panics
///
/// Panics if `k >= bits` (nothing would remain).
#[must_use]
pub fn sar_word(x: &Word, k: usize) -> Word {
    assert!(k < x.bits(), "shift {k} must be smaller than width {}", x.bits());
    let msb = x.msb();
    let mut out: Vec<WireId> = x.0[k..].to_vec();
    out.extend(std::iter::repeat_n(msb, k));
    Word(out)
}

/// Vectorized Algorithm-2 ReLU: `n` neurons in one circuit.
///
/// Garbler inputs: all `y₁` words then all `z₁` words; evaluator inputs:
/// all `y₀` words; outputs: all `z₀` words — each group in neuron order.
#[must_use]
pub fn relu_reshare_vec_circuit(bits: usize, n: usize) -> Circuit {
    relu_trunc_reshare_vec_circuit(bits, n, 0)
}

/// Vectorized Algorithm-2 ReLU with a built-in fixed-point truncation: each
/// neuron computes `z₀ = ReLU((y₀ + y₁) ≫ₐ shift) − z₁`.
///
/// The arithmetic shift is free inside the circuit (rewiring), which is how
/// the secure pipeline truncates products *exactly* instead of using
/// probabilistic local share truncation.
#[must_use]
pub fn relu_trunc_reshare_vec_circuit(bits: usize, n: usize, shift: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let z1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let y0: Vec<Word> = (0..n).map(|_| b.evaluator_word(bits)).collect();
    let mut outs = Vec::with_capacity(n * bits);
    for j in 0..n {
        let y = add(&mut b, &y0[j], &y1[j]);
        let t = sar_word(&y, shift);
        let r = relu(&mut b, &t);
        let z0 = sub(&mut b, &r, &z1[j]);
        outs.extend(z0.0);
    }
    b.build(outs)
}

/// Vectorized phase-1 comparison for the optimized ReLU: one output bit per
/// neuron (`1` iff non-negative).
#[must_use]
pub fn relu_sign_vec_circuit(bits: usize, n: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let y0: Vec<Word> = (0..n).map(|_| b.evaluator_word(bits)).collect();
    let mut outs = Vec::with_capacity(n);
    for j in 0..n {
        let y = add(&mut b, &y0[j], &y1[j]);
        outs.push(b.inv(y.msb()));
    }
    b.build(outs)
}

/// Vectorized phase-2 reconstruct-and-reshare for the optimized ReLU, over
/// the subset of non-negative neurons only.
#[must_use]
pub fn reconstruct_reshare_vec_circuit(bits: usize, n: usize) -> Circuit {
    reconstruct_trunc_reshare_vec_circuit(bits, n, 0)
}

/// Vectorized phase-2 reconstruct-truncate-reshare:
/// `z₀ = ((y₀ + y₁) ≫ₐ shift) − z₁` per neuron.
#[must_use]
pub fn reconstruct_trunc_reshare_vec_circuit(bits: usize, n: usize, shift: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let y1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let z1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let y0: Vec<Word> = (0..n).map(|_| b.evaluator_word(bits)).collect();
    let mut outs = Vec::with_capacity(n * bits);
    for j in 0..n {
        let y = add(&mut b, &y0[j], &y1[j]);
        let t = sar_word(&y, shift);
        let z0 = sub(&mut b, &t, &z1[j]);
        outs.extend(z0.0);
    }
    b.build(outs)
}

/// Word-wise XOR (free).
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn xor_word(b: &mut CircuitBuilder, x: &Word, y: &Word) -> Word {
    assert_eq!(x.bits(), y.bits(), "word width mismatch");
    Word(x.0.iter().zip(&y.0).map(|(&xi, &yi)| b.xor(xi, yi)).collect())
}

/// Masked-argmax circuit: reconstructs `n` shared values, finds the index
/// of the (signed) maximum, and outputs `index ⊕ mask` — so the evaluator
/// can forward the masked index and only the garbler (who chose the mask)
/// learns the class. Used by the secure-classification extension.
///
/// Garbler inputs, in order: all `y₁` value words, the ⌈log₂n⌉-bit mask,
/// then the `n` public index constants (⌈log₂n⌉ bits each, supplied by the
/// garbler since the circuit model has no constant wires). Evaluator
/// inputs: all `y₀` value words. Output: ⌈log₂n⌉ masked index bits.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn argmax_mask_circuit(bits: usize, n: usize) -> Circuit {
    assert!(n > 0, "argmax needs at least one value");
    let idx_bits = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    let idx_bits = idx_bits.max(1);
    let mut b = CircuitBuilder::new();
    let y1: Vec<Word> = (0..n).map(|_| b.garbler_word(bits)).collect();
    let mask = b.garbler_word(idx_bits);
    let consts: Vec<Word> = (0..n).map(|_| b.garbler_word(idx_bits)).collect();
    let y0: Vec<Word> = (0..n).map(|_| b.evaluator_word(bits)).collect();

    let mut best_val = add(&mut b, &y0[0], &y1[0]);
    let mut best_idx = consts[0].clone();
    for i in 1..n {
        let v = add(&mut b, &y0[i], &y1[i]);
        let take = lt_signed(&mut b, &best_val, &v);
        best_val = mux(&mut b, take, &v, &best_val);
        best_idx = mux(&mut b, take, &consts[i], &best_idx);
    }
    let out = xor_word(&mut b, &best_idx, &mask);
    b.build(out.0)
}

/// Number of index bits [`argmax_mask_circuit`] uses for `n` values.
#[must_use]
pub fn argmax_index_bits(n: usize) -> usize {
    (usize::BITS as usize - (n.saturating_sub(1)).leading_zeros() as usize).max(1)
}

/// Vectorized max-pool-and-reshare circuit for the CNN extension: for each
/// of `n_windows` windows of `window` shared values, reconstruct the
/// values, take the (signed) maximum, and re-share it as `z₀ = max − z₁`.
///
/// Garbler inputs: all `y₁` window values (window-major), then one `z₁`
/// word per window; evaluator inputs: all `y₀` window values; outputs: one
/// `z₀` word per window.
///
/// # Panics
///
/// Panics if `window` is zero.
#[must_use]
pub fn max_pool_reshare_vec_circuit(bits: usize, window: usize, n_windows: usize) -> Circuit {
    assert!(window > 0, "window must be positive");
    let mut b = CircuitBuilder::new();
    let y1: Vec<Word> = (0..n_windows * window).map(|_| b.garbler_word(bits)).collect();
    let z1: Vec<Word> = (0..n_windows).map(|_| b.garbler_word(bits)).collect();
    let y0: Vec<Word> = (0..n_windows * window).map(|_| b.evaluator_word(bits)).collect();
    let mut outs = Vec::with_capacity(n_windows * bits);
    for (w, z1w) in z1.iter().enumerate() {
        let mut m: Option<Word> = None;
        for e in 0..window {
            let idx = w * window + e;
            let v = add(&mut b, &y0[idx], &y1[idx]);
            m = Some(match m {
                None => v,
                Some(cur) => max(&mut b, &cur, &v),
            });
        }
        let z0 = sub(&mut b, &m.expect("window non-empty"), z1w);
        outs.extend(z0.0);
    }
    b.build(outs)
}

/// Signed comparison `x < y` for two's-complement words (ℓ AND gates).
///
/// Both operands are sign-extended by one bit (free: the extension reuses
/// the sign wire) so the subtraction cannot overflow.
///
/// # Panics
///
/// Panics if the word widths differ.
pub fn lt_signed(b: &mut CircuitBuilder, x: &Word, y: &Word) -> WireId {
    assert_eq!(x.bits(), y.bits(), "word width mismatch");
    let xe = Word(x.0.iter().copied().chain([x.msb()]).collect());
    let ye = Word(y.0.iter().copied().chain([y.msb()]).collect());
    let d = sub(b, &xe, &ye);
    d.msb()
}

/// Maximum of two two's-complement words (used by the max-pooling
/// extension): `max(x, y) = (x < y) ? y : x` (2ℓ AND gates).
pub fn max(b: &mut CircuitBuilder, x: &Word, y: &Word) -> Word {
    let x_less = lt_signed(b, x, y);
    mux(b, x_less, y, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{bits_to_u64, u64_to_bits};
    use abnn2_math::Ring;
    use proptest::prelude::*;

    fn eval_two_words(c: &Circuit, g: &[u64], e: &[u64], bits: usize) -> u64 {
        let gbits: Vec<bool> = g.iter().flat_map(|&x| u64_to_bits(x, bits)).collect();
        let ebits: Vec<bool> = e.iter().flat_map(|&x| u64_to_bits(x, bits)).collect();
        bits_to_u64(&c.eval(&gbits, &ebits))
    }

    fn adder_circuit(bits: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_word(bits);
        let y = b.evaluator_word(bits);
        let s = add(&mut b, &x, &y);
        b.build(s.0)
    }

    fn sub_circuit(bits: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_word(bits);
        let y = b.evaluator_word(bits);
        let s = sub(&mut b, &x, &y);
        b.build(s.0)
    }

    #[test]
    fn adder_and_count_is_l_minus_1() {
        assert_eq!(adder_circuit(32).and_count(), 31);
        assert_eq!(sub_circuit(32).and_count(), 31);
    }

    #[test]
    fn relu_reshare_and_count() {
        assert_eq!(relu_reshare_circuit(32).and_count(), 3 * 32 - 2);
        assert_eq!(relu_sign_circuit(32).and_count(), 31);
        assert_eq!(reconstruct_reshare_circuit(32).and_count(), 2 * 32 - 2);
    }

    #[test]
    fn relu_known_values() {
        let ring = Ring::new(16);
        let c = relu_reshare_circuit(16);
        for (y, expect) in [(5i64, 5u64), (-5, 0), (0, 0), (32767, 32767), (-32768, 0)] {
            let y_ring = ring.from_i64(y);
            let y1 = 0x1234u64 & ring.mask();
            let y0 = ring.sub(y_ring, y1);
            let z1 = 0x0F0Fu64;
            let z0 = eval_two_words(&c, &[y1, z1], &[y0], 16);
            assert_eq!(ring.add(z0, z1), expect, "y = {y}");
        }
    }

    #[test]
    fn sign_circuit_known_values() {
        let ring = Ring::new(8);
        let c = relu_sign_circuit(8);
        for y in [-128i64, -1, 0, 1, 127] {
            let y_ring = ring.from_i64(y);
            let y1 = 0x5Au64;
            let y0 = ring.sub(y_ring, y1);
            let out = c.eval(&u64_to_bits(y1, 8), &u64_to_bits(y0, 8));
            assert_eq!(out[0], y >= 0, "y = {y}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn adder_matches_ring(bits in 2usize..=32, a: u64, b: u64) {
            let ring = Ring::new(bits as u32);
            let (a, b) = (ring.reduce(a), ring.reduce(b));
            let c = adder_circuit(bits);
            prop_assert_eq!(eval_two_words(&c, &[a], &[b], bits), ring.add(a, b));
        }

        #[test]
        fn subtractor_matches_ring(bits in 2usize..=32, a: u64, b: u64) {
            let ring = Ring::new(bits as u32);
            let (a, b) = (ring.reduce(a), ring.reduce(b));
            let c = sub_circuit(bits);
            prop_assert_eq!(eval_two_words(&c, &[a], &[b], bits), ring.sub(a, b));
        }

        #[test]
        fn relu_reshare_matches_plaintext(bits in 2usize..=32, y0: u64, y1: u64, z1: u64) {
            let ring = Ring::new(bits as u32);
            let (y0, y1, z1) = (ring.reduce(y0), ring.reduce(y1), ring.reduce(z1));
            let c = relu_reshare_circuit(bits);
            let z0 = eval_two_words(&c, &[y1, z1], &[y0], bits);
            let y = ring.add(y0, y1);
            let expect = if ring.is_negative(y) { 0 } else { y };
            prop_assert_eq!(ring.add(z0, z1), expect);
        }

        #[test]
        fn relu_trunc_matches_plaintext(bits in 4usize..=24, shift in 0usize..3, y0: u64, y1: u64, z1: u64) {
            let ring = Ring::new(bits as u32);
            let (y0, y1, z1) = (ring.reduce(y0), ring.reduce(y1), ring.reduce(z1));
            let c = relu_trunc_reshare_vec_circuit(bits, 1, shift);
            let z0 = eval_two_words(&c, &[y1, z1], &[y0], bits);
            let y = ring.add(y0, y1);
            let t = ring.from_i64(ring.to_i64(y) >> shift);
            let expect = if ring.is_negative(t) { 0 } else { t };
            prop_assert_eq!(ring.add(z0, z1), expect);
        }

        #[test]
        fn reconstruct_trunc_matches_plaintext(bits in 4usize..=24, shift in 0usize..3, y0: u64, y1: u64, z1: u64) {
            let ring = Ring::new(bits as u32);
            let (y0, y1, z1) = (ring.reduce(y0), ring.reduce(y1), ring.reduce(z1));
            let c = reconstruct_trunc_reshare_vec_circuit(bits, 1, shift);
            let z0 = eval_two_words(&c, &[y1, z1], &[y0], bits);
            let y = ring.add(y0, y1);
            let t = ring.from_i64(ring.to_i64(y) >> shift);
            prop_assert_eq!(ring.add(z0, z1), t);
        }

        #[test]
        fn max_matches_plaintext(bits in 2usize..=16, a: u64, b: u64) {
            let ring = Ring::new(bits as u32);
            let (a, b) = (ring.reduce(a), ring.reduce(b));
            let mut builder = CircuitBuilder::new();
            let x = builder.garbler_word(bits);
            let y = builder.evaluator_word(bits);
            let m = max(&mut builder, &x, &y);
            let c = builder.build(m.0);
            let got = eval_two_words(&c, &[a], &[b], bits);
            let expect = if ring.to_i64(a) >= ring.to_i64(b) { a } else { b };
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn argmax_mask_matches_plaintext(bits in 6usize..=16, seed: u64, n in 2usize..6) {
            use rand::SeedableRng;
            let ring = Ring::new(bits as u32);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let values: Vec<u64> = ring.sample_vec(&mut rng, n);
            let y1: Vec<u64> = ring.sample_vec(&mut rng, n);
            let y0: Vec<u64> = ring.sub_vec(&values, &y1);
            let idx_bits = argmax_index_bits(n);
            let mask = (seed % (1 << idx_bits)) as u64;
            let c = argmax_mask_circuit(bits, n);
            let mut gbits: Vec<bool> = y1.iter().flat_map(|&v| u64_to_bits(v, bits)).collect();
            gbits.extend(u64_to_bits(mask, idx_bits));
            for i in 0..n as u64 {
                gbits.extend(u64_to_bits(i, idx_bits));
            }
            let ebits: Vec<bool> = y0.iter().flat_map(|&v| u64_to_bits(v, bits)).collect();
            let out = bits_to_u64(&c.eval(&gbits, &ebits));
            // First-max semantics (strict comparison in the circuit).
            let mut expect_idx = 0u64;
            let mut best = ring.to_i64(values[0]);
            for (i, &v) in values.iter().enumerate().skip(1) {
                if ring.to_i64(v) > best {
                    best = ring.to_i64(v);
                    expect_idx = i as u64;
                }
            }
            prop_assert_eq!(out ^ mask, expect_idx);
        }

        #[test]
        fn max_pool_reshare_matches_plaintext(bits in 6usize..=20, seed: u64) {
            use rand::{Rng, SeedableRng};
            let ring = Ring::new(bits as u32);
            let (window, n_windows) = (4usize, 2usize);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let y: Vec<u64> = ring.sample_vec(&mut rng, window * n_windows);
            let y1: Vec<u64> = ring.sample_vec(&mut rng, window * n_windows);
            let y0: Vec<u64> = ring.sub_vec(&y, &y1);
            let z1: Vec<u64> = ring.sample_vec(&mut rng, n_windows);
            let _ = rng.gen::<bool>();
            let c = max_pool_reshare_vec_circuit(bits, window, n_windows);
            let mut gbits: Vec<bool> = y1.iter().flat_map(|&v| u64_to_bits(v, bits)).collect();
            gbits.extend(z1.iter().flat_map(|&v| u64_to_bits(v, bits)));
            let ebits: Vec<bool> = y0.iter().flat_map(|&v| u64_to_bits(v, bits)).collect();
            let out = c.eval(&gbits, &ebits);
            for w in 0..n_windows {
                let z0 = bits_to_u64(&out[w * bits..(w + 1) * bits]);
                let expect = y[w * window..(w + 1) * window]
                    .iter()
                    .map(|&v| ring.to_i64(v))
                    .max()
                    .expect("non-empty");
                prop_assert_eq!(ring.to_i64(ring.add(z0, z1[w])), expect, "window {}", w);
            }
        }

        #[test]
        fn mux_selects(bits in 1usize..=16, a: u64, b: u64, sel: bool) {
            let ring = Ring::new(bits as u32);
            let (a, b) = (ring.reduce(a), ring.reduce(b));
            let mut builder = CircuitBuilder::new();
            let s = builder.garbler_input();
            let x = builder.garbler_word(bits);
            let y = builder.evaluator_word(bits);
            let m = mux(&mut builder, s, &x, &y);
            let c = builder.build(m.0);
            let mut gbits = vec![sel];
            gbits.extend(u64_to_bits(a, bits));
            let got = bits_to_u64(&c.eval(&gbits, &u64_to_bits(b, bits)));
            prop_assert_eq!(got, if sel { a } else { b });
        }
    }
}
