//! Half-gates garbling (Zahur–Rosulek–Evans, EUROCRYPT 2015) with free-XOR
//! and point-and-permute.
//!
//! XOR and INV gates are free; each AND gate produces two ciphertext blocks.
//! The global offset Δ has its least-significant bit forced to 1 so the LSB
//! of every label acts as the permute bit.

use crate::circuit::{Circuit, Gate, WireId};
use crate::GcError;
use abnn2_crypto::{Block, RoHash};
use rand::Rng;

/// The material the garbler ships to the evaluator (besides input labels).
#[derive(Debug, Clone)]
pub struct GarbledCircuit {
    /// Two blocks per AND gate, in gate order.
    pub and_tables: Vec<(Block, Block)>,
    /// Decode bit per output wire: `value = lsb(label) ⊕ decode`.
    pub output_decode: Vec<bool>,
}

/// The garbler's private label material.
#[derive(Debug, Clone)]
pub struct GarblerLabels {
    /// `(zero, one)` label pair per garbler input wire, declaration order.
    pub garbler_inputs: Vec<(Block, Block)>,
    /// `(zero, one)` label pair per evaluator input wire, declaration order.
    pub evaluator_inputs: Vec<(Block, Block)>,
}

impl GarblerLabels {
    /// Selects the garbler's own wire labels for its input bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the declared garbler inputs.
    #[must_use]
    pub fn select_garbler(&self, bits: &[bool]) -> Vec<Block> {
        assert_eq!(bits.len(), self.garbler_inputs.len(), "garbler input count");
        bits.iter().zip(&self.garbler_inputs).map(|(&b, &(z, o))| if b { o } else { z }).collect()
    }
}

/// Garbles a circuit, returning the evaluator material and the garbler's
/// input label pairs.
pub fn garble<R: Rng + ?Sized>(circuit: &Circuit, rng: &mut R) -> (GarbledCircuit, GarblerLabels) {
    let hash = RoHash::new();
    let delta = Block::random(rng).with_lsb(true);
    let mut zero = vec![Block::ZERO; circuit.n_wires];

    for &w in circuit.garbler_inputs.iter().chain(&circuit.evaluator_inputs) {
        zero[w] = Block::random(rng);
    }

    let mut and_tables = Vec::with_capacity(circuit.and_count());
    let mut and_idx: u128 = 0;
    for gate in &circuit.gates {
        match *gate {
            Gate::Xor { a, b, out } => zero[out] = zero[a] ^ zero[b],
            Gate::Inv { a, out } => zero[out] = zero[a] ^ delta,
            Gate::And { a, b, out } => {
                let (t0, t1) = (2 * and_idx, 2 * and_idx + 1);
                and_idx += 1;
                let (za, zb) = (zero[a], zero[b]);
                let (pa, pb) = (za.lsb(), zb.lsb());
                // All four half-gate hashes in one backend batch.
                let mut h = [
                    za ^ Block::from(t0),
                    za ^ delta ^ Block::from(t0),
                    zb ^ Block::from(t1),
                    zb ^ delta ^ Block::from(t1),
                ];
                hash.hash_blocks(&mut h);
                let [ha0, ha1, hb0, hb1] = h;
                // Generator half gate.
                let tg = ha0 ^ ha1 ^ if pb { delta } else { Block::ZERO };
                let wg = ha0 ^ if pa { tg } else { Block::ZERO };
                // Evaluator half gate.
                let te = hb0 ^ hb1 ^ za;
                let we = hb0 ^ if pb { te ^ za } else { Block::ZERO };
                zero[out] = wg ^ we;
                and_tables.push((tg, te));
            }
        }
    }

    let output_decode = circuit.outputs.iter().map(|&w| zero[w].lsb()).collect();
    let pair = |w: WireId| (zero[w], zero[w] ^ delta);
    let labels = GarblerLabels {
        garbler_inputs: circuit.garbler_inputs.iter().map(|&w| pair(w)).collect(),
        evaluator_inputs: circuit.evaluator_inputs.iter().map(|&w| pair(w)).collect(),
    };
    (GarbledCircuit { and_tables, output_decode }, labels)
}

/// Evaluates a garbled circuit given one label per input wire, returning
/// decoded output bits.
///
/// # Errors
///
/// Returns [`GcError::Malformed`] if label counts or table sizes do not
/// match the circuit.
pub fn evaluate(
    circuit: &Circuit,
    garbled: &GarbledCircuit,
    garbler_labels: &[Block],
    evaluator_labels: &[Block],
) -> Result<Vec<bool>, GcError> {
    if garbler_labels.len() != circuit.garbler_inputs.len() {
        return Err(GcError::Malformed("garbler label count"));
    }
    if evaluator_labels.len() != circuit.evaluator_inputs.len() {
        return Err(GcError::Malformed("evaluator label count"));
    }
    if garbled.and_tables.len() != circuit.and_count() {
        return Err(GcError::Malformed("AND table count"));
    }
    if garbled.output_decode.len() != circuit.outputs.len() {
        return Err(GcError::Malformed("output decode count"));
    }

    let hash = RoHash::new();
    let mut label = vec![Block::ZERO; circuit.n_wires];
    for (&w, &l) in circuit.garbler_inputs.iter().zip(garbler_labels) {
        label[w] = l;
    }
    for (&w, &l) in circuit.evaluator_inputs.iter().zip(evaluator_labels) {
        label[w] = l;
    }

    let mut and_idx: u128 = 0;
    for gate in &circuit.gates {
        match *gate {
            Gate::Xor { a, b, out } => label[out] = label[a] ^ label[b],
            Gate::Inv { a, out } => label[out] = label[a],
            Gate::And { a, b, out } => {
                let (t0, t1) = (2 * and_idx, 2 * and_idx + 1);
                let (tg, te) = garbled.and_tables[and_idx as usize];
                and_idx += 1;
                let (wa, wb) = (label[a], label[b]);
                let mut h = [wa ^ Block::from(t0), wb ^ Block::from(t1)];
                hash.hash_blocks(&mut h);
                let wg = h[0] ^ if wa.lsb() { tg } else { Block::ZERO };
                let we = h[1] ^ if wb.lsb() { te ^ wa } else { Block::ZERO };
                label[out] = wg ^ we;
            }
        }
    }

    Ok(circuit
        .outputs
        .iter()
        .zip(&garbled.output_decode)
        .map(|(&w, &d)| label[w].lsb() ^ d)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{u64_to_bits, CircuitBuilder};
    use crate::circuits;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn garble_eval(circuit: &Circuit, g_bits: &[bool], e_bits: &[bool], seed: u64) -> Vec<bool> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (gc, labels) = garble(circuit, &mut rng);
        let g_labels = labels.select_garbler(g_bits);
        let e_labels: Vec<Block> = e_bits
            .iter()
            .zip(&labels.evaluator_inputs)
            .map(|(&b, &(z, o))| if b { o } else { z })
            .collect();
        evaluate(circuit, &gc, &g_labels, &e_labels).expect("evaluate")
    }

    #[test]
    fn single_gates_match_plaintext() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_input();
        let y = b.evaluator_input();
        let a = b.and(x, y);
        let o = b.or(x, y);
        let xo = b.xor(x, y);
        let n = b.inv(y);
        let c = b.build(vec![a, o, xo, n]);
        for (gx, gy) in [(false, false), (false, true), (true, false), (true, true)] {
            let got = garble_eval(&c, &[gx], &[gy], 5);
            assert_eq!(got, c.eval(&[gx], &[gy]), "inputs ({gx},{gy})");
        }
    }

    #[test]
    fn relu_circuit_garbles_correctly() {
        let c = circuits::relu_reshare_circuit(16);
        let g_bits: Vec<bool> =
            u64_to_bits(0xABCD, 16).into_iter().chain(u64_to_bits(0x0102, 16)).collect();
        let e_bits = u64_to_bits(0x7FFF, 16);
        assert_eq!(garble_eval(&c, &g_bits, &e_bits, 6), c.eval(&g_bits, &e_bits));
    }

    #[test]
    fn corrupted_table_changes_output_or_is_detected() {
        let c = circuits::relu_reshare_circuit(8);
        let g_bits = vec![false; 16];
        let e_bits = u64_to_bits(0x55, 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let (mut gc, labels) = garble(&c, &mut rng);
        let honest = evaluate(&c, &gc, &labels.select_garbler(&g_bits), &{
            e_bits
                .iter()
                .zip(&labels.evaluator_inputs)
                .map(|(&b, &(z, o))| if b { o } else { z })
                .collect::<Vec<_>>()
        })
        .expect("evaluate");
        // Flip both half-gate ciphertexts of every AND gate so the tampering
        // hits rows the evaluator actually uses regardless of select bits.
        for table in gc.and_tables.iter_mut() {
            table.0 ^= Block::from(1u128);
            table.1 ^= Block::from(1u128);
        }
        match evaluate(&c, &gc, &labels.select_garbler(&g_bits), &{
            e_bits
                .iter()
                .zip(&labels.evaluator_inputs)
                .map(|(&b, &(z, o))| if b { o } else { z })
                .collect::<Vec<_>>()
        }) {
            Ok(corrupted) => {
                assert_ne!(honest, corrupted, "tampering must not go unnoticed in the output")
            }
            Err(_) => {} // surfacing an error also counts as detection
        }
    }

    #[test]
    fn mismatched_material_is_rejected() {
        let c = circuits::relu_reshare_circuit(8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let (gc, labels) = garble(&c, &mut rng);
        let g = labels.select_garbler(&vec![false; 16]);
        assert_eq!(evaluate(&c, &gc, &g, &[]), Err(GcError::Malformed("evaluator label count")));
        assert_eq!(
            evaluate(&c, &gc, &g[..3], &vec![Block::ZERO; 8]),
            Err(GcError::Malformed("garbler label count"))
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn garbled_equals_plaintext_on_vec_relu(seed: u64, y0: u64, y1: u64, z1: u64) {
            let bits = 12;
            let n = 3;
            let c = circuits::relu_reshare_vec_circuit(bits, n);
            let mask = (1u64 << bits) - 1;
            let mut g_bits = Vec::new();
            for k in 0..n as u64 {
                g_bits.extend(u64_to_bits((y1 >> k) & mask, bits));
            }
            for k in 0..n as u64 {
                g_bits.extend(u64_to_bits((z1 >> k) & mask, bits));
            }
            let mut e_bits = Vec::new();
            for k in 0..n as u64 {
                e_bits.extend(u64_to_bits((y0 >> k) & mask, bits));
            }
            prop_assert_eq!(garble_eval(&c, &g_bits, &e_bits, seed), c.eval(&g_bits, &e_bits));
        }
    }
}
