//! Non-blocking frame pump for readiness-based event loops.
//!
//! [`FrameBuffer`] speaks the same wire format as
//! [`TcpTransport`](crate::TcpTransport) — a 4-byte little-endian payload
//! length followed by the payload, bounded by
//! [`MAX_FRAME_LEN`] — but over a socket in
//! non-blocking mode. Instead of looping until a frame is complete, it
//! accumulates whatever bytes the kernel has and reports `None` when a
//! frame is still partial, so one event-loop thread can sweep many
//! connections without ever parking on any single one. The outbound side
//! mirrors `TcpTransport`'s write coalescing: queued frames accumulate in
//! one buffer that drains with as few `write(2)` calls as the socket
//! accepts, surviving partial writes across sweeps.
//!
//! Errors are latched ("sticky") exactly like the blocking transport:
//! once a connection reports `Closed` or `Malformed`, every later poll
//! reports the same error.

use crate::tcp::MAX_FRAME_LEN;
use crate::transport::TransportError;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Inbound reassembly position: which part of the current frame the next
/// readable bytes belong to.
#[derive(Debug)]
enum ReadState {
    /// Accumulating the 4-byte length prefix.
    Header { buf: [u8; 4], filled: usize },
    /// Length known; awaiting the tag byte so the payload allocation can
    /// be bounded by the tag's registry ceiling before it happens.
    Tag { len: usize },
    /// Accumulating the payload of a frame whose length and tag passed
    /// their bounds.
    Payload { buf: Vec<u8>, filled: usize },
}

/// Incremental length-prefixed framing over a non-blocking [`TcpStream`].
///
/// ```text
/// loop {                         // one event-loop sweep
///     while let Some(frame) = fb.poll_read()? { driver.feed(frame); }
///     ... step the session driver, queue its Send effects ...
///     fb.poll_write()?;          // drain as much as the socket takes
/// }
/// ```
#[derive(Debug)]
pub struct FrameBuffer {
    stream: TcpStream,
    read: ReadState,
    /// Framed outbound bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// Prefix of `wbuf` already written (compacted when fully drained).
    wpos: usize,
    /// First fatal error observed; latched and re-reported thereafter.
    sticky: Option<TransportError>,
}

impl FrameBuffer {
    /// Wraps `stream`, switching it to non-blocking mode and disabling
    /// Nagle's algorithm (queued frames are already coalesced).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the socket options cannot be
    /// set (the stream is unusable).
    pub fn new(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nonblocking(true).map_err(|_| TransportError::Closed)?;
        stream.set_nodelay(true).map_err(|_| TransportError::Closed)?;
        Ok(FrameBuffer {
            stream,
            read: ReadState::Header { buf: [0; 4], filled: 0 },
            wbuf: Vec::new(),
            wpos: 0,
            sticky: None,
        })
    }

    /// The underlying stream (e.g. to inspect the peer address).
    #[must_use]
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    fn fail(&mut self, err: TransportError) -> TransportError {
        if self.sticky.is_none() {
            self.sticky = Some(err);
        }
        err
    }

    fn check_sticky(&self) -> Result<(), TransportError> {
        match self.sticky {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Reads whatever the socket has toward the current frame. Returns
    /// `Ok(Some(payload))` when a frame completed, `Ok(None)` when the
    /// socket has no more bytes right now (the event loop parks the
    /// connection until it is readable again). Call in a loop: several
    /// frames may be ready in one sweep.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] on EOF or a socket error,
    /// [`TransportError::Malformed`] on an oversized length prefix or a
    /// payload larger than its tag's registry ceiling
    /// ([`wire::tags::max_len`](crate::wire::tags::max_len)). All are
    /// sticky.
    pub fn poll_read(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        self.check_sticky()?;
        loop {
            match &mut self.read {
                ReadState::Header { buf, filled } => {
                    while *filled < buf.len() {
                        match self.stream.read(&mut buf[*filled..]) {
                            Ok(0) => return Err(self.fail(TransportError::Closed)),
                            Ok(n) => *filled += n,
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                            Err(_) => return Err(self.fail(TransportError::Closed)),
                        }
                    }
                    let len = u32::from_le_bytes(*buf) as usize;
                    if len > MAX_FRAME_LEN {
                        return Err(
                            self.fail(TransportError::Malformed("frame length exceeds maximum"))
                        );
                    }
                    if len == 0 {
                        // Empty message: no tag byte to bound against; the
                        // decoder surfaces it as a typed Empty error.
                        self.read = ReadState::Header { buf: [0; 4], filled: 0 };
                        return Ok(Some(Vec::new()));
                    }
                    self.read = ReadState::Tag { len };
                }
                ReadState::Tag { len } => {
                    let len = *len;
                    let mut tag = [0u8; 1];
                    loop {
                        match self.stream.read(&mut tag) {
                            Ok(0) => return Err(self.fail(TransportError::Closed)),
                            Ok(_) => break,
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                            Err(_) => return Err(self.fail(TransportError::Closed)),
                        }
                    }
                    let ceiling = crate::wire::tags::max_len(tag[0])
                        .unwrap_or(crate::wire::tags::UNREGISTERED_MAX_LEN);
                    if len - 1 > ceiling {
                        return Err(self
                            .fail(TransportError::Malformed("frame length exceeds tag ceiling")));
                    }
                    let mut buf = vec![0u8; len];
                    buf[0] = tag[0];
                    self.read = ReadState::Payload { buf, filled: 1 };
                }
                ReadState::Payload { buf, filled } => {
                    while *filled < buf.len() {
                        match self.stream.read(&mut buf[*filled..]) {
                            Ok(0) => return Err(self.fail(TransportError::Closed)),
                            Ok(n) => *filled += n,
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                            Err(_) => return Err(self.fail(TransportError::Closed)),
                        }
                    }
                    let ReadState::Payload { buf, .. } = std::mem::replace(
                        &mut self.read,
                        ReadState::Header { buf: [0; 4], filled: 0 },
                    ) else {
                        unreachable!("state checked above");
                    };
                    return Ok(Some(buf));
                }
            }
        }
    }

    /// Queues one frame (length prefix added here) for a later
    /// [`poll_write`](Self::poll_write).
    pub fn queue_send(&mut self, payload: &[u8]) {
        debug_assert!(payload.len() <= MAX_FRAME_LEN, "oversized frame");
        self.wbuf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload);
    }

    /// Writes as much queued output as the socket accepts. Returns whether
    /// the queue fully drained; `false` means the connection should be
    /// watched for writability and polled again.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] (sticky) on a socket error.
    pub fn poll_write(&mut self) -> Result<bool, TransportError> {
        self.check_sticky()?;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(self.fail(TransportError::Closed)),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(_) => return Err(self.fail(TransportError::Closed)),
            }
        }
        // Fully drained: recycle the buffer's capacity for the next batch.
        self.wbuf.clear();
        self.wpos = 0;
        Ok(true)
    }

    /// Whether queued output is still waiting for the socket.
    #[must_use]
    pub fn has_pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Bytes of framed output queued but not yet accepted by the socket —
    /// the quantity a serving governor bounds to evict peers that stop
    /// draining their connection.
    #[must_use]
    pub fn pending_write_bytes(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::{Duration, Instant};

    fn pair() -> (FrameBuffer, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let peer = TcpStream::connect(addr).expect("connect");
        let (stream, _) = listener.accept().expect("accept");
        (FrameBuffer::new(stream).expect("wrap"), peer)
    }

    /// Polls until a frame arrives, with a wall-clock bound so a broken
    /// pump fails the test instead of hanging it.
    fn read_frame(fb: &mut FrameBuffer) -> Vec<u8> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(frame) = fb.poll_read().expect("poll_read") {
                return frame;
            }
            assert!(Instant::now() < deadline, "no frame within deadline");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn empty_socket_polls_none_without_blocking() {
        let (mut fb, _peer) = pair();
        let start = Instant::now();
        assert_eq!(fb.poll_read().expect("poll"), None);
        assert!(start.elapsed() < Duration::from_secs(1), "poll_read must not block");
    }

    #[test]
    fn frame_split_across_many_writes_is_reassembled() {
        let (mut fb, mut peer) = pair();
        let payload = b"hello pump";
        let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(payload);
        for (i, chunk) in framed.chunks(3).enumerate() {
            peer.write_all(chunk).expect("write");
            peer.flush().expect("flush");
            // Give the kernel a moment so most chunks arrive separately;
            // correctness does not depend on the timing.
            std::thread::sleep(Duration::from_millis(2));
            if i == 0 {
                assert_eq!(fb.poll_read().expect("poll"), None, "frame is still partial");
            }
        }
        assert_eq!(read_frame(&mut fb), payload);
    }

    #[test]
    fn multiple_frames_in_one_sweep() {
        let (mut fb, mut peer) = pair();
        for payload in [b"one".as_slice(), b"two", b"three"] {
            peer.write_all(&(payload.len() as u32).to_le_bytes()).expect("len");
            peer.write_all(payload).expect("payload");
        }
        peer.flush().expect("flush");
        assert_eq!(read_frame(&mut fb), b"one");
        assert_eq!(read_frame(&mut fb), b"two");
        assert_eq!(read_frame(&mut fb), b"three");
        assert_eq!(fb.poll_read().expect("poll"), None);
    }

    #[test]
    fn oversized_length_prefix_is_malformed_and_sticky() {
        let (mut fb, mut peer) = pair();
        peer.write_all(&u32::MAX.to_le_bytes()).expect("write");
        peer.flush().expect("flush");
        let deadline = Instant::now() + Duration::from_secs(10);
        let err = loop {
            match fb.poll_read() {
                Ok(Some(_)) => panic!("oversized frame must not complete"),
                Ok(None) => {
                    assert!(Instant::now() < deadline, "no error within deadline");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => break e,
            }
        };
        assert_eq!(err, TransportError::Malformed("frame length exceeds maximum"));
        assert_eq!(fb.poll_read(), Err(TransportError::Malformed("frame length exceeds maximum")));
    }

    #[test]
    fn payload_above_tag_ceiling_is_malformed_before_allocation() {
        let (mut fb, mut peer) = pair();
        // A u64 frame (8-byte ceiling) claiming half a gigabyte must be
        // rejected from the five header+tag bytes alone — the payload
        // buffer is never allocated.
        peer.write_all(&((1u32 << 29) + 1).to_le_bytes()).expect("len");
        peer.write_all(&[crate::wire::tags::U64]).expect("tag");
        peer.flush().expect("flush");
        let deadline = Instant::now() + Duration::from_secs(10);
        let err = loop {
            match fb.poll_read() {
                Ok(Some(_)) => panic!("oversized frame must not complete"),
                Ok(None) => {
                    assert!(Instant::now() < deadline, "no error within deadline");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => break e,
            }
        };
        assert_eq!(err, TransportError::Malformed("frame length exceeds tag ceiling"));
        assert_eq!(
            fb.poll_read(),
            Err(TransportError::Malformed("frame length exceeds tag ceiling")),
            "tag-ceiling rejection must latch"
        );
    }

    #[test]
    fn frame_at_its_tag_ceiling_still_completes() {
        let (mut fb, mut peer) = pair();
        let mut payload = vec![crate::wire::tags::U64];
        payload.extend_from_slice(&7u64.to_le_bytes());
        peer.write_all(&(payload.len() as u32).to_le_bytes()).expect("len");
        peer.write_all(&payload).expect("payload");
        peer.flush().expect("flush");
        assert_eq!(read_frame(&mut fb), payload);
    }

    #[test]
    fn peer_eof_is_closed() {
        let (mut fb, peer) = pair();
        drop(peer);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match fb.poll_read() {
                Ok(None) => {
                    assert!(Instant::now() < deadline, "no EOF within deadline");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(Some(_)) => panic!("no frame was sent"),
                Err(e) => {
                    assert_eq!(e, TransportError::Closed);
                    break;
                }
            }
        }
    }

    #[test]
    fn queued_frames_drain_and_round_trip() {
        let (mut fb, mut peer) = pair();
        fb.queue_send(b"alpha");
        fb.queue_send(b"beta");
        assert!(fb.has_pending_write());
        let deadline = Instant::now() + Duration::from_secs(10);
        while !fb.poll_write().expect("poll_write") {
            assert!(Instant::now() < deadline, "write did not drain");
        }
        assert!(!fb.has_pending_write());
        for expected in [b"alpha".as_slice(), b"beta"] {
            let mut len = [0u8; 4];
            peer.read_exact(&mut len).expect("len");
            let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
            peer.read_exact(&mut payload).expect("payload");
            assert_eq!(payload, expected);
        }
    }
}
