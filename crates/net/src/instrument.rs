//! Per-phase accounting [`Transport`] decorator.
//!
//! [`InstrumentedTransport`] wraps any transport and attributes traffic to
//! named phases (e.g. `"base-ot"`, `"offline"`, `"online"`). The wrapper
//! counts application payload bytes and messages itself — independent of the
//! inner transport's own counters — so phase attribution works identically
//! over the simulated [`Endpoint`](crate::Endpoint), real TCP, or any future
//! transport, which is what the paper's per-phase Comm. tables need.
//!
//! Phase stats live behind a shared, cloneable [`InstrumentHandle`]: any
//! number of observers can snapshot the counters concurrently while the
//! transport is in use on another thread — a multi-session server
//! aggregates live per-phase traffic across all of its connections this
//! way, without `&mut` access to any transport.

use crate::channel::CommSnapshot;
use crate::transport::{Transport, TransportError};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Traffic and wall-clock time attributed to one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Payload bytes sent during the phase.
    pub bytes_sent: u64,
    /// Payload bytes received during the phase.
    pub bytes_received: u64,
    /// Messages sent during the phase.
    pub messages_sent: u64,
    /// Messages received during the phase.
    pub messages_received: u64,
    /// Wall-clock time spent in the phase.
    pub elapsed: Duration,
}

impl PhaseStats {
    /// Accumulates `other` into `self` (counter-wise sum; elapsed adds).
    pub fn merge(&mut self, other: &PhaseStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.messages_sent += other.messages_sent;
        self.messages_received += other.messages_received;
        self.elapsed += other.elapsed;
    }

    /// Total payload bytes crossing the wire in both directions.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// Traffic attributed to one frame tag (see [`crate::wire::tags`]).
///
/// Unlike [`PhaseStats`], byte counts here **exclude** the one-byte frame
/// tag: they are the frames' payload bytes, directly comparable to the
/// paper's per-message counts (e.g. the γ(N−1) masked-message bytes of
/// §4.1.3 for the KK13 triplet frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TagStats {
    /// Payload bytes sent under this tag (tag byte excluded).
    pub bytes_sent: u64,
    /// Payload bytes received under this tag (tag byte excluded).
    pub bytes_received: u64,
    /// Frames sent under this tag.
    pub messages_sent: u64,
    /// Frames received under this tag.
    pub messages_received: u64,
}

impl TagStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &TagStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.messages_sent += other.messages_sent;
        self.messages_received += other.messages_received;
    }

    /// Total payload bytes under this tag in both directions.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// Shared, cloneable read handle onto an [`InstrumentedTransport`]'s phase
/// counters. Snapshots never block the transport for longer than a counter
/// update, and remain valid after the transport is dropped (they report the
/// final state).
#[derive(Debug, Clone, Default)]
pub struct InstrumentHandle {
    phases: Arc<Mutex<Vec<(String, PhaseStats)>>>,
    /// Per-frame-tag counters, keyed by each message's leading tag byte.
    tags: Arc<Mutex<BTreeMap<u8, TagStats>>>,
}

impl InstrumentHandle {
    fn new() -> Self {
        InstrumentHandle {
            phases: Arc::new(Mutex::new(vec![("setup".to_string(), PhaseStats::default())])),
            tags: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Snapshot of all phases in chronological order (current phase last,
    /// with its clock up to date as of the last channel operation).
    #[must_use]
    pub fn phases(&self) -> Vec<(String, PhaseStats)> {
        self.phases.lock().expect("instrument lock").clone()
    }

    /// Stats for the most recent phase with this name, if any.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<PhaseStats> {
        self.phases
            .lock()
            .expect("instrument lock")
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }

    /// Sum of every phase with this name (a re-entered phase opens a fresh
    /// entry; this folds them back together).
    #[must_use]
    pub fn phase_total(&self, name: &str) -> PhaseStats {
        let mut total = PhaseStats::default();
        for (n, s) in self.phases.lock().expect("instrument lock").iter() {
            if n == name {
                total.merge(s);
            }
        }
        total
    }

    /// Sum over all phases.
    #[must_use]
    pub fn total(&self) -> PhaseStats {
        let mut total = PhaseStats::default();
        for (_, s) in self.phases.lock().expect("instrument lock").iter() {
            total.merge(s);
        }
        total
    }

    /// Whether this is the last handle standing — the transport (and every
    /// other clone) has been dropped, so the counters are final. Lets a
    /// long-lived registry fold finished sessions into a frozen total
    /// instead of holding live handles forever.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        Arc::strong_count(&self.phases) == 1
    }

    /// Counters for one frame tag (zero if the tag never crossed the wire).
    #[must_use]
    pub fn tag(&self, tag: u8) -> TagStats {
        self.tags.lock().expect("instrument lock").get(&tag).copied().unwrap_or_default()
    }

    /// Every tag observed on the wire with its counters, in tag order.
    #[must_use]
    pub fn tags(&self) -> Vec<(u8, TagStats)> {
        self.tags.lock().expect("instrument lock").iter().map(|(&t, &s)| (t, s)).collect()
    }

    fn with_current<F: FnOnce(&mut PhaseStats)>(&self, f: F) {
        let mut phases = self.phases.lock().expect("instrument lock");
        f(&mut phases.last_mut().expect("at least one phase").1)
    }

    /// Attributes one sent message to its leading tag byte. Payload bytes
    /// are counted without the tag byte itself; empty (untagged) messages
    /// are skipped.
    fn record_tag_send(&self, payload: &[u8]) {
        if let Some((&tag, rest)) = payload.split_first() {
            let mut tags = self.tags.lock().expect("instrument lock");
            let entry = tags.entry(tag).or_default();
            entry.bytes_sent += rest.len() as u64;
            entry.messages_sent += 1;
        }
    }

    /// Attributes one received message to its leading tag byte.
    fn record_tag_recv(&self, payload: &[u8]) {
        if let Some((&tag, rest)) = payload.split_first() {
            let mut tags = self.tags.lock().expect("instrument lock");
            let entry = tags.entry(tag).or_default();
            entry.bytes_received += rest.len() as u64;
            entry.messages_received += 1;
        }
    }

    fn push(&self, name: &str) {
        self.phases
            .lock()
            .expect("instrument lock")
            .push((name.to_string(), PhaseStats::default()));
    }
}

/// Decorator recording per-phase byte/message/time counters, readable
/// concurrently through [`InstrumentHandle`]s.
pub struct InstrumentedTransport<T> {
    inner: T,
    handle: InstrumentHandle,
    phase_started: Instant,
}

impl<T: Transport> InstrumentedTransport<T> {
    /// Wraps `inner`, opening an initial phase named `"setup"`.
    pub fn new(inner: T) -> Self {
        Self { inner, handle: InstrumentHandle::new(), phase_started: Instant::now() }
    }

    /// A cloneable read handle onto this transport's phase counters.
    #[must_use]
    pub fn handle(&self) -> InstrumentHandle {
        self.handle.clone()
    }

    /// Closes the current phase and opens a new one. Re-entering a name
    /// opens a fresh entry; entries are reported in chronological order.
    pub fn enter_phase(&mut self, name: &str) {
        self.roll_clock();
        self.handle.push(name);
    }

    /// Stats for the most recent phase with this name, if any.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<PhaseStats> {
        self.handle.phase(name)
    }

    /// All phases in chronological order (current phase last, with its
    /// clock up to date as of the last channel operation).
    #[must_use]
    pub fn phases(&self) -> Vec<(String, PhaseStats)> {
        self.handle.phases()
    }

    /// Unwraps the decorator, returning the inner transport. Handles stay
    /// valid and report the final counters.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Mutable access to the inner transport — e.g. to stage data a
    /// subsequent metered `recv` will observe. Operations through this
    /// reference bypass the counters.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    fn roll_clock(&mut self) {
        let now = Instant::now();
        let delta = now.duration_since(self.phase_started);
        self.handle.with_current(|s| s.elapsed += delta);
        self.phase_started = now;
    }
}

impl<T: Transport> Transport for InstrumentedTransport<T> {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.inner.send(payload)?;
        self.roll_clock();
        self.handle.with_current(|s| {
            s.bytes_sent += payload.len() as u64;
            s.messages_sent += 1;
        });
        self.handle.record_tag_send(payload);
        Ok(())
    }

    fn send_owned(&mut self, payload: Vec<u8>) -> Result<(), TransportError> {
        let len = payload.len() as u64;
        let tag_prefix: Option<u8> = payload.first().copied();
        self.inner.send_owned(payload)?;
        self.roll_clock();
        self.handle.with_current(|s| {
            s.bytes_sent += len;
            s.messages_sent += 1;
        });
        if let Some(tag) = tag_prefix {
            let mut tags = self.handle.tags.lock().expect("instrument lock");
            let entry = tags.entry(tag).or_default();
            entry.bytes_sent += len - 1;
            entry.messages_sent += 1;
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        let payload = self.inner.recv()?;
        self.roll_clock();
        self.handle.with_current(|s| {
            s.bytes_received += payload.len() as u64;
            s.messages_received += 1;
        });
        self.handle.record_tag_recv(&payload);
        Ok(payload)
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        self.inner.flush()
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_read_timeout(timeout)
    }

    fn set_phase_budget(&mut self, budget: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_phase_budget(budget)
    }

    fn mark_phase(&mut self, label: &str) {
        self.enter_phase(label);
    }

    fn snapshot(&self) -> CommSnapshot {
        self.inner.snapshot()
    }

    fn take_scratch(&mut self) -> Vec<u8> {
        self.inner.take_scratch()
    }

    fn store_scratch(&mut self, buf: Vec<u8>) {
        self.inner.store_scratch(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Endpoint, NetworkModel};

    #[test]
    fn traffic_is_attributed_to_phases() {
        let (a, mut b) = Endpoint::pair(NetworkModel::instant());
        let mut a = InstrumentedTransport::new(a);
        a.send(b"xy").unwrap();
        a.enter_phase("online");
        a.send_u64(1).unwrap();
        a.send_u64(2).unwrap();
        b.send(b"reply").unwrap();
        let _ = a.recv().unwrap();

        let setup = a.phase("setup").unwrap();
        assert_eq!(setup.bytes_sent, 2);
        assert_eq!(setup.messages_sent, 1);
        assert_eq!(setup.bytes_received, 0);

        let online = a.phase("online").unwrap();
        assert_eq!(online.bytes_sent, 18, "two u64 frames: 2 × (1 tag + 8 payload)");
        assert_eq!(online.messages_sent, 2);
        assert_eq!(online.bytes_received, 5);
        assert_eq!(online.messages_received, 1);

        // Global counters come from the inner transport, unchanged.
        assert_eq!(a.snapshot().bytes_sent, 20);
    }

    #[test]
    fn traffic_is_attributed_to_frame_tags() {
        use crate::wire::tags;
        let (a, mut b) = Endpoint::pair(NetworkModel::instant());
        let mut a = InstrumentedTransport::new(a);
        let handle = a.handle();
        a.send_u64(1).unwrap();
        a.send_u64(2).unwrap();
        a.send_blocks(&[abnn2_crypto::Block::from(7u128)]).unwrap();
        b.send_u64(3).unwrap();
        let _ = a.recv_u64().unwrap();

        // Tag counters exclude the tag byte: pure payload bytes.
        let u64s = handle.tag(tags::U64);
        assert_eq!(u64s.bytes_sent, 16);
        assert_eq!(u64s.messages_sent, 2);
        assert_eq!(u64s.bytes_received, 8);
        assert_eq!(u64s.messages_received, 1);
        let blocks = handle.tag(tags::BLOCKS);
        assert_eq!(blocks.bytes_sent, 16);
        assert_eq!(blocks.messages_sent, 1);
        assert_eq!(handle.tag(tags::HELLO), TagStats::default());
        assert_eq!(handle.tags().len(), 2);
        for _ in 0..3 {
            let _ = b.recv().unwrap();
        }
    }

    #[test]
    fn reentered_phase_gets_fresh_entry() {
        let (a, _b) = Endpoint::pair(NetworkModel::instant());
        let mut a = InstrumentedTransport::new(a);
        a.enter_phase("layer");
        a.enter_phase("relu");
        a.enter_phase("layer");
        assert_eq!(a.phases().len(), 4);
        assert_eq!(a.phases()[1].0, "layer");
        assert_eq!(a.phases()[3].0, "layer");
    }

    #[test]
    fn handle_snapshots_concurrently_and_survives_drop() {
        let (a, mut b) = Endpoint::pair(NetworkModel::instant());
        let mut a = InstrumentedTransport::new(a);
        let handle = a.handle();
        a.enter_phase("offline");

        std::thread::scope(|scope| {
            let watcher = scope.spawn(|| {
                // Live snapshot from another thread, no &mut access.
                loop {
                    if handle.phase_total("offline").messages_sent >= 3 {
                        return;
                    }
                    std::thread::yield_now();
                }
            });
            for v in 0..3u64 {
                a.send_u64(v).unwrap();
            }
            watcher.join().unwrap();
        });
        for _ in 0..3 {
            let _ = b.recv().unwrap();
        }

        let handle2 = handle.clone();
        drop(a);
        assert_eq!(handle2.phase("offline").unwrap().bytes_sent, 27);
        assert_eq!(handle2.total().bytes_sent, 27);
    }

    #[test]
    fn merge_and_totals() {
        let mut a = PhaseStats {
            bytes_sent: 1,
            bytes_received: 2,
            messages_sent: 3,
            messages_received: 4,
            elapsed: Duration::from_millis(5),
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.bytes_sent, 2);
        assert_eq!(a.messages_received, 8);
        assert_eq!(a.elapsed, Duration::from_millis(10));
        assert_eq!(a.total_bytes(), 6);
    }
}
