//! Per-phase accounting [`Transport`] decorator.
//!
//! [`InstrumentedTransport`] wraps any transport and attributes traffic to
//! named phases (e.g. `"base-ot"`, `"offline"`, `"online"`). The wrapper
//! counts application payload bytes and messages itself — independent of the
//! inner transport's own counters — so phase attribution works identically
//! over the simulated [`Endpoint`](crate::Endpoint), real TCP, or any future
//! transport, which is what the paper's per-phase Comm. tables need.

use crate::channel::CommSnapshot;
use crate::transport::{Transport, TransportError};
use std::time::{Duration, Instant};

/// Traffic and wall-clock time attributed to one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Payload bytes sent during the phase.
    pub bytes_sent: u64,
    /// Payload bytes received during the phase.
    pub bytes_received: u64,
    /// Messages sent during the phase.
    pub messages_sent: u64,
    /// Messages received during the phase.
    pub messages_received: u64,
    /// Wall-clock time spent in the phase.
    pub elapsed: Duration,
}

/// Decorator recording per-phase byte/message/time counters.
pub struct InstrumentedTransport<T> {
    inner: T,
    phases: Vec<(String, PhaseStats)>,
    phase_started: Instant,
}

impl<T: Transport> InstrumentedTransport<T> {
    /// Wraps `inner`, opening an initial phase named `"setup"`.
    pub fn new(inner: T) -> Self {
        Self {
            inner,
            phases: vec![("setup".to_string(), PhaseStats::default())],
            phase_started: Instant::now(),
        }
    }

    /// Closes the current phase and opens a new one. Re-entering a name
    /// opens a fresh entry; entries are reported in chronological order.
    pub fn enter_phase(&mut self, name: &str) {
        self.roll_clock();
        self.phases.push((name.to_string(), PhaseStats::default()));
    }

    /// Stats for the most recent phase with this name, if any.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<PhaseStats> {
        self.phases.iter().rev().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    /// All phases in chronological order (current phase last, with its
    /// clock up to date as of the last channel operation).
    #[must_use]
    pub fn phases(&self) -> &[(String, PhaseStats)] {
        &self.phases
    }

    /// Unwraps the decorator, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn roll_clock(&mut self) {
        let now = Instant::now();
        let delta = now.duration_since(self.phase_started);
        self.current().elapsed += delta;
        self.phase_started = now;
    }

    fn current(&mut self) -> &mut PhaseStats {
        &mut self.phases.last_mut().expect("at least one phase").1
    }
}

impl<T: Transport> Transport for InstrumentedTransport<T> {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.inner.send(payload)?;
        self.roll_clock();
        let stats = self.current();
        stats.bytes_sent += payload.len() as u64;
        stats.messages_sent += 1;
        Ok(())
    }

    fn send_owned(&mut self, payload: Vec<u8>) -> Result<(), TransportError> {
        let len = payload.len() as u64;
        self.inner.send_owned(payload)?;
        self.roll_clock();
        let stats = self.current();
        stats.bytes_sent += len;
        stats.messages_sent += 1;
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        let payload = self.inner.recv()?;
        self.roll_clock();
        let stats = self.current();
        stats.bytes_received += payload.len() as u64;
        stats.messages_received += 1;
        Ok(payload)
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        self.inner.flush()
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_read_timeout(timeout)
    }

    fn set_phase_budget(&mut self, budget: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_phase_budget(budget)
    }

    fn snapshot(&self) -> CommSnapshot {
        self.inner.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Endpoint, NetworkModel};

    #[test]
    fn traffic_is_attributed_to_phases() {
        let (a, mut b) = Endpoint::pair(NetworkModel::instant());
        let mut a = InstrumentedTransport::new(a);
        a.send(b"xy").unwrap();
        a.enter_phase("online");
        a.send_u64(1).unwrap();
        a.send_u64(2).unwrap();
        b.send(b"reply").unwrap();
        let _ = a.recv().unwrap();

        let setup = a.phase("setup").unwrap();
        assert_eq!(setup.bytes_sent, 2);
        assert_eq!(setup.messages_sent, 1);
        assert_eq!(setup.bytes_received, 0);

        let online = a.phase("online").unwrap();
        assert_eq!(online.bytes_sent, 16);
        assert_eq!(online.messages_sent, 2);
        assert_eq!(online.bytes_received, 5);
        assert_eq!(online.messages_received, 1);

        // Global counters come from the inner transport, unchanged.
        assert_eq!(a.snapshot().bytes_sent, 18);
    }

    #[test]
    fn reentered_phase_gets_fresh_entry() {
        let (a, _b) = Endpoint::pair(NetworkModel::instant());
        let mut a = InstrumentedTransport::new(a);
        a.enter_phase("layer");
        a.enter_phase("relu");
        a.enter_phase("layer");
        assert_eq!(a.phases().len(), 4);
        assert_eq!(a.phases()[1].0, "layer");
        assert_eq!(a.phases()[3].0, "layer");
    }
}
