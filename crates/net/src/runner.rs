//! Two-party protocol runner.

use crate::{CommSnapshot, Endpoint, NetworkModel};
use std::time::{Duration, Instant};

/// End-of-run traffic and timing report for a two-party execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficReport {
    /// Final statistics at the server endpoint.
    pub server: CommSnapshot,
    /// Final statistics at the client endpoint.
    pub client: CommSnapshot,
    /// Wall-clock duration of the run (both threads).
    pub wall: Duration,
}

impl TrafficReport {
    /// Total bytes on the wire in both directions.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.server.bytes_sent + self.client.bytes_sent
    }

    /// Total bytes as mebibytes, the unit of the paper's tables.
    #[must_use]
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Simulated end-to-end protocol time: the later of the two endpoints'
    /// virtual clocks.
    #[must_use]
    pub fn simulated_time(&self) -> Duration {
        self.server.vtime.max(self.client.vtime)
    }
}

/// Runs a server closure and a client closure on two threads connected by a
/// channel pair under `model`, returning both results and the traffic
/// report.
///
/// # Panics
///
/// Panics if either party panics (the panic is propagated).
pub fn run_pair<A, B, FS, FC>(model: NetworkModel, server: FS, client: FC) -> (A, B, TrafficReport)
where
    A: Send,
    B: Send,
    FS: FnOnce(&mut Endpoint) -> A + Send,
    FC: FnOnce(&mut Endpoint) -> B + Send,
{
    let (mut ep_s, mut ep_c) = Endpoint::pair(model);
    let start = Instant::now();
    let (a, snap_s, b, snap_c) = std::thread::scope(|scope| {
        let hs = scope.spawn(move || {
            let a = server(&mut ep_s);
            (a, ep_s.snapshot())
        });
        let hc = scope.spawn(move || {
            let b = client(&mut ep_c);
            (b, ep_c.snapshot())
        });
        let (a, snap_s) = hs.join().expect("server thread panicked");
        let (b, snap_c) = hc.join().expect("client thread panicked");
        (a, snap_s, b, snap_c)
    });
    let report = TrafficReport { server: snap_s, client: snap_c, wall: start.elapsed() };
    (a, b, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_and_report() {
        let (a, b, report) = run_pair(
            NetworkModel::instant(),
            |ch| {
                ch.send_u64(21).unwrap();
                ch.recv_u64().unwrap()
            },
            |ch| {
                let v = ch.recv_u64().unwrap();
                ch.send_u64(v * 2).unwrap();
                v
            },
        );
        assert_eq!(a, 42);
        assert_eq!(b, 21);
        assert_eq!(report.total_bytes(), 16);
        assert!(report.simulated_time() <= report.wall + Duration::from_millis(50));
    }

    #[test]
    fn wan_latency_dominates_round_trips() {
        let rounds = 5u64;
        let (_, _, report) = run_pair(
            NetworkModel::wan_secureml(),
            |ch| {
                for i in 0..rounds {
                    ch.send_u64(i).unwrap();
                    ch.recv_u64().unwrap();
                }
            },
            |ch| {
                for _ in 0..rounds {
                    let v = ch.recv_u64().unwrap();
                    ch.send_u64(v).unwrap();
                }
            },
        );
        // 5 round trips at 72 ms RTT ≈ 360 ms simulated, regardless of the
        // (much smaller) wall time.
        assert!(report.simulated_time() >= Duration::from_millis(350));
        assert!(report.wall < Duration::from_millis(200));
    }

    #[test]
    fn mib_conversion() {
        let report = TrafficReport {
            server: CommSnapshot { bytes_sent: 1024 * 1024, ..Default::default() },
            client: CommSnapshot::default(),
            wall: Duration::ZERO,
        };
        assert_eq!(report.total_mib(), 1.0);
    }
}
