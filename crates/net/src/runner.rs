//! Two-party protocol runner and the reconnect-and-resume driver.

use crate::transport::TransportError;
use crate::{CommSnapshot, Endpoint, NetworkModel};
use std::time::{Duration, Instant};

/// End-of-run traffic and timing report for a two-party execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficReport {
    /// Final statistics at the server endpoint.
    pub server: CommSnapshot,
    /// Final statistics at the client endpoint.
    pub client: CommSnapshot,
    /// Wall-clock duration of the run (both threads).
    pub wall: Duration,
}

impl TrafficReport {
    /// Total bytes on the wire in both directions.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.server.bytes_sent + self.client.bytes_sent
    }

    /// Total bytes as mebibytes, the unit of the paper's tables.
    #[must_use]
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Simulated end-to-end protocol time: the later of the two endpoints'
    /// virtual clocks.
    #[must_use]
    pub fn simulated_time(&self) -> Duration {
        self.server.vtime.max(self.client.vtime)
    }
}

/// Runs a server closure and a client closure on two threads connected by a
/// channel pair under `model`, returning both results and the traffic
/// report.
///
/// # Panics
///
/// Panics if either party panics (the panic is propagated).
pub fn run_pair<A, B, FS, FC>(model: NetworkModel, server: FS, client: FC) -> (A, B, TrafficReport)
where
    A: Send,
    B: Send,
    FS: FnOnce(&mut Endpoint) -> A + Send,
    FC: FnOnce(&mut Endpoint) -> B + Send,
{
    let (mut ep_s, mut ep_c) = Endpoint::pair(model);
    let start = Instant::now();
    let (a, snap_s, b, snap_c) = std::thread::scope(|scope| {
        let hs = scope.spawn(move || {
            let a = server(&mut ep_s);
            (a, ep_s.snapshot())
        });
        let hc = scope.spawn(move || {
            let b = client(&mut ep_c);
            (b, ep_c.snapshot())
        });
        let (a, snap_s) = hs.join().expect("server thread panicked");
        let (b, snap_c) = hc.join().expect("client thread panicked");
        (a, snap_s, b, snap_c)
    });
    let report = TrafficReport { server: snap_s, client: snap_c, wall: start.elapsed() };
    (a, b, report)
}

/// Errors that can classify themselves as transient (worth reconnecting and
/// retrying) or fatal (a protocol violation or negotiation failure that a
/// fresh connection cannot fix).
pub trait Retryable {
    /// Whether reconnecting and retrying could plausibly clear the error.
    fn is_retryable(&self) -> bool;
}

impl Retryable for TransportError {
    fn is_retryable(&self) -> bool {
        TransportError::is_retryable(self)
    }
}

/// Reconnection schedule: capped exponential backoff with deterministic
/// jitter.
///
/// Attempt `k` (0-based) sleeps `min(base_delay * 2^k, max_delay)` scaled by
/// a jitter factor in `[0.5, 1.0]` derived from `jitter_seed` and `k`
/// (SplitMix64), so two parties retrying simultaneously with different seeds
/// do not reconnect in lockstep, yet every schedule is reproducible in
/// tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total connection attempts (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` retries and zero backoff, for tests that
    /// must not sleep.
    #[must_use]
    pub fn no_delay(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// The backoff sleep before retry number `attempt` (1-based retry index:
    /// `backoff(1)` precedes the second connection attempt).
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self.base_delay.saturating_mul(1u32 << exp);
        let capped = raw.min(self.max_delay);
        // SplitMix64 on (seed, attempt) -> jitter factor in [0.5, 1.0].
        let mut z =
            self.jitter_seed.wrapping_add(u64::from(attempt)).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let factor = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        capped.mul_f64(factor)
    }
}

/// Drives a fallible protocol body through connect → run → reconnect cycles
/// under a [`RetryPolicy`].
///
/// The driver owns only the *schedule*; what state survives a reconnect
/// (e.g. checkpointed offline-phase triplets) is the body's business — the
/// body closure is handed the attempt number so it can distinguish a fresh
/// run from a resumption.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResilientDriver {
    /// The reconnection schedule.
    pub policy: RetryPolicy,
}

impl ResilientDriver {
    /// Creates a driver with the given policy.
    #[must_use]
    pub fn new(policy: RetryPolicy) -> Self {
        ResilientDriver { policy }
    }

    /// Runs `body` over transports minted by `connect`, reconnecting and
    /// retrying on retryable errors until the policy's attempt budget is
    /// exhausted.
    ///
    /// `connect(attempt)` establishes a fresh transport for the given
    /// 0-based attempt; `body(&mut transport, attempt)` runs the protocol.
    /// A fatal (non-retryable) error from either closure aborts
    /// immediately; the last error is returned when attempts run out.
    ///
    /// # Errors
    ///
    /// The first fatal error, or the last retryable error once
    /// `policy.max_attempts` attempts have failed.
    pub fn run<T, S, E, C, F>(&self, mut connect: C, mut body: F) -> Result<S, E>
    where
        E: Retryable + From<TransportError>,
        C: FnMut(u32) -> Result<T, TransportError>,
        F: FnMut(&mut T, u32) -> Result<S, E>,
    {
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err: Option<E> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let pause = self.policy.backoff(attempt);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            let mut transport = match connect(attempt) {
                Ok(t) => t,
                Err(e) => {
                    let retryable = e.is_retryable();
                    let e = E::from(e);
                    if !retryable {
                        return Err(e);
                    }
                    last_err = Some(e);
                    continue;
                }
            };
            match body(&mut transport, attempt) {
                Ok(out) => return Ok(out),
                Err(e) => {
                    if !e.is_retryable() {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;

    #[test]
    fn results_and_report() {
        let (a, b, report) = run_pair(
            NetworkModel::instant(),
            |ch| {
                ch.send_u64(21).unwrap();
                ch.recv_u64().unwrap()
            },
            |ch| {
                let v = ch.recv_u64().unwrap();
                ch.send_u64(v * 2).unwrap();
                v
            },
        );
        assert_eq!(a, 42);
        assert_eq!(b, 21);
        // Two u64 frames: 2 × (1 tag + 8 payload) bytes.
        assert_eq!(report.total_bytes(), 18);
        assert!(report.simulated_time() <= report.wall + Duration::from_millis(50));
    }

    #[test]
    fn wan_latency_dominates_round_trips() {
        let rounds = 5u64;
        let (_, _, report) = run_pair(
            NetworkModel::wan_secureml(),
            |ch| {
                for i in 0..rounds {
                    ch.send_u64(i).unwrap();
                    ch.recv_u64().unwrap();
                }
            },
            |ch| {
                for _ in 0..rounds {
                    let v = ch.recv_u64().unwrap();
                    ch.send_u64(v).unwrap();
                }
            },
        );
        // 5 round trips at 72 ms RTT ≈ 360 ms simulated, regardless of the
        // (much smaller) wall time.
        assert!(report.simulated_time() >= Duration::from_millis(350));
        assert!(report.wall < Duration::from_millis(200));
    }

    #[test]
    fn mib_conversion() {
        let report = TrafficReport {
            server: CommSnapshot { bytes_sent: 1024 * 1024, ..Default::default() },
            client: CommSnapshot::default(),
            wall: Duration::ZERO,
        };
        assert_eq!(report.total_mib(), 1.0);
    }

    #[test]
    fn backoff_grows_capped_and_jittered() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(450),
            jitter_seed: 3,
        };
        // Jitter keeps each sleep within [0.5, 1.0] of the capped nominal.
        for (attempt, nominal_ms) in [(1u32, 100u64), (2, 200), (3, 400), (4, 450), (9, 450)] {
            let b = p.backoff(attempt);
            let nominal = Duration::from_millis(nominal_ms);
            assert!(b >= nominal / 2, "attempt {attempt}: {b:?} < {:?}", nominal / 2);
            assert!(b <= nominal, "attempt {attempt}: {b:?} > {nominal:?}");
        }
        // Deterministic per (seed, attempt); varies across seeds.
        assert_eq!(p.backoff(2), p.backoff(2));
        let q = RetryPolicy { jitter_seed: 4, ..p };
        assert_ne!(p.backoff(2), q.backoff(2));
    }

    #[test]
    fn driver_retries_then_succeeds() {
        let driver = ResilientDriver::new(RetryPolicy::no_delay(3));
        let mut bodies = 0u32;
        let out: Result<u32, TransportError> = driver.run(
            |_attempt| Ok(()),
            |_t, attempt| {
                bodies += 1;
                if attempt < 2 {
                    Err(TransportError::Closed)
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(out, Ok(2));
        assert_eq!(bodies, 3);
    }

    #[test]
    fn driver_stops_on_fatal_error() {
        let driver = ResilientDriver::new(RetryPolicy::no_delay(5));
        let mut bodies = 0u32;
        let out: Result<(), TransportError> = driver.run(
            |_attempt| Ok(()),
            |_t, _attempt| {
                bodies += 1;
                Err(TransportError::Malformed("protocol bug"))
            },
        );
        assert_eq!(out, Err(TransportError::Malformed("protocol bug")));
        assert_eq!(bodies, 1, "fatal errors must not be retried");
    }

    #[test]
    fn driver_retries_failed_connects_and_reports_last_error() {
        let driver = ResilientDriver::new(RetryPolicy::no_delay(3));
        let mut connects = 0u32;
        let out: Result<(), TransportError> = driver.run(
            |_attempt| {
                connects += 1;
                Err(TransportError::Closed)
            },
            |_t: &mut (), _attempt| Ok(()),
        );
        assert_eq!(out, Err(TransportError::Closed));
        assert_eq!(connects, 3);
    }
}
