//! The `Transport` abstraction every protocol layer is generic over.
//!
//! A [`Transport`] is a reliable, ordered, message-oriented duplex channel to
//! the single peer of a two-party protocol. The simulated in-process
//! [`Endpoint`](crate::Endpoint) and the real [`TcpTransport`](crate::TcpTransport)
//! both implement it, and decorators ([`FaultyTransport`](crate::FaultyTransport),
//! [`InstrumentedTransport`](crate::InstrumentedTransport)) wrap any inner
//! transport to add fault injection or per-phase accounting.
//!
//! Byte accounting is defined at the **application framing layer**: a message
//! of `n` payload bytes counts `n` against `bytes_sent`, regardless of
//! transport-level overhead such as TCP/IP headers or length prefixes. This
//! is the layer at which the paper's Comm. columns are measured, so counts
//! are identical across transports by construction.

use crate::channel::CommSnapshot;
use crate::wire::{Blocks, Frame, U64Frame, WireError, WireGot};
use abnn2_crypto::Block;
use std::borrow::Cow;
use std::time::Duration;

/// Transport-level failure, split by root cause so protocol layers can
/// surface the *right* error: a vanished peer ([`Closed`]) versus a peer (or
/// a corrupted link) that delivered bytes violating the framing contract
/// ([`Malformed`]) versus a peer that is *silent* past the configured
/// deadline ([`TimedOut`]).
///
/// [`Closed`]: TransportError::Closed
/// [`Malformed`]: TransportError::Malformed
/// [`TimedOut`]: TransportError::TimedOut
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The peer disconnected (or the underlying connection was lost).
    Closed,
    /// A message arrived but its contents violate the framing contract
    /// (wrong length, oversized frame, ...). The payload names the check.
    Malformed(&'static str),
    /// No message arrived within the configured read timeout, or the
    /// phase deadline budget was exhausted. The connection may still be
    /// alive: a silent peer is distinguishable from a dead one.
    TimedOut,
    /// A non-blocking transport has no message available *right now*. Only
    /// raised by readiness-driven transports (the session driver's replay
    /// channel); blocking transports never surface it. Event loops treat it
    /// as "park and retry when readable", never as a failure.
    WouldBlock,
}

impl TransportError {
    /// Whether reconnecting and retrying could plausibly clear the error.
    /// `Closed` and `TimedOut` are transient link conditions; `Malformed`
    /// indicates a protocol bug or a hostile peer and is fatal.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TransportError::Closed | TransportError::TimedOut | TransportError::WouldBlock
        )
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "peer transport closed"),
            TransportError::Malformed(what) => write!(f, "malformed message: {what}"),
            TransportError::TimedOut => write!(f, "peer silent past deadline"),
            TransportError::WouldBlock => write!(f, "no message available (would block)"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Reliable, ordered, message-oriented duplex channel between the two
/// protocol parties.
///
/// Implementors provide the byte-message primitives ([`send`](Transport::send),
/// [`recv`](Transport::recv), [`snapshot`](Transport::snapshot)); the typed
/// helpers (`u64`s, 128-bit [`Block`]s) are provided methods layered on top,
/// so every implementation — including decorators — inherits consistent
/// framing and error semantics.
pub trait Transport {
    /// Sends one message to the peer.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the peer is gone.
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError>;

    /// Sends one message, taking ownership of the buffer.
    ///
    /// Implementations that queue messages (the in-process [`Endpoint`]
    /// moves the buffer straight into the channel) override this to avoid a
    /// copy. The default borrows for the send, then recycles the buffer
    /// into the connection's scratch slot ([`store_scratch`]) so the next
    /// [`send_frame`] does not have to allocate.
    ///
    /// [`Endpoint`]: crate::Endpoint
    /// [`store_scratch`]: Transport::store_scratch
    /// [`send_frame`]: Transport::send_frame
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the peer is gone.
    fn send_owned(&mut self, payload: Vec<u8>) -> Result<(), TransportError> {
        let result = self.send(&payload);
        self.store_scratch(payload);
        result
    }

    /// Receives the next message from the peer, blocking until it arrives.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the peer is gone, or
    /// [`TransportError::Malformed`] if the transport's own framing is
    /// violated (e.g. an oversized TCP frame header).
    fn recv(&mut self) -> Result<Vec<u8>, TransportError>;

    /// Flushes any write-coalescing buffer down to the wire.
    ///
    /// Message-queue transports deliver eagerly and keep the no-op default;
    /// buffered byte-stream transports (TCP) must push pending frames out.
    /// Implementations of [`recv`](Transport::recv) on such transports flush
    /// implicitly, so protocol code only needs an explicit `flush` before
    /// going idle.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the peer is gone.
    fn flush(&mut self) -> Result<(), TransportError> {
        Ok(())
    }

    /// Current cumulative communication statistics (application-layer bytes).
    fn snapshot(&self) -> CommSnapshot;

    /// Bounds how long a single [`recv`](Transport::recv) may block before
    /// failing with [`TransportError::TimedOut`]. `None` (the default)
    /// blocks forever.
    ///
    /// The default implementation ignores the timeout (in-process message
    /// queues cannot go silent without the peer being dropped, which already
    /// surfaces as `Closed`); real-socket transports honor it via
    /// `SO_RCVTIMEO`. Decorators MUST forward this call to their inner
    /// transport.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the timeout cannot be applied.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        let _ = timeout;
        Ok(())
    }

    /// Starts a deadline budget covering *all* subsequent operations: once
    /// the budget is exhausted, sends and receives fail with
    /// [`TransportError::TimedOut`] even if each individual read would have
    /// met its own timeout. `None` clears the budget.
    ///
    /// Real-time transports measure the budget on the wall clock; the
    /// simulated endpoint charges it against its virtual clock, so a phase
    /// that would overrun its budget on the modelled network times out in
    /// simulation too. Decorators MUST forward this call.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the budget cannot be applied.
    fn set_phase_budget(&mut self, budget: Option<Duration>) -> Result<(), TransportError> {
        let _ = budget;
        Ok(())
    }

    /// Labels subsequent traffic for instrumentation purposes (e.g.
    /// `"offline:op2/relu"`). A no-op everywhere except metering
    /// decorators, which attribute bytes/messages/time to the label;
    /// protocol code may call it freely without changing the transcript.
    /// Decorators that wrap another transport MUST forward this call.
    fn mark_phase(&mut self, label: &str) {
        let _ = label;
    }

    /// Takes the connection's reusable scratch buffer (empty capacity if
    /// none is stored). Transports with a real per-connection buffer
    /// override this pair; decorators MUST forward both calls so the frame
    /// layer reuses the innermost transport's buffer.
    fn take_scratch(&mut self) -> Vec<u8> {
        Vec::new()
    }

    /// Returns a buffer to the scratch slot for reuse by the next
    /// [`send_frame`](Transport::send_frame). The default discards it.
    fn store_scratch(&mut self, buf: Vec<u8>) {
        let _ = buf;
    }

    /// Sends one typed [`Frame`]: the frame's one-byte tag followed by its
    /// encoded payload, serialized through the connection's scratch buffer
    /// so hot loops do not allocate per message.
    ///
    /// This — with [`recv_frame`](Transport::recv_frame) — is the only
    /// sanctioned way to move protocol payloads; raw
    /// [`send`](Transport::send)/[`recv`](Transport::recv) are reserved for
    /// transport-internal uses in this crate.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the peer is gone.
    fn send_frame<F: Frame>(&mut self, frame: &F) -> Result<(), TransportError>
    where
        Self: Sized,
    {
        let mut buf = self.take_scratch();
        buf.clear();
        buf.push(F::TAG);
        frame.encode_into(&mut buf);
        let result = self.send(&buf);
        self.store_scratch(buf);
        result
    }

    /// Receives one typed [`Frame`], verifying the tag byte before handing
    /// the payload to [`Frame::decode`].
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the peer is gone;
    /// [`TransportError::Malformed`] — carrying the expected frame's name —
    /// if the message is empty, tagged as a different frame, or fails the
    /// frame's payload validation.
    fn recv_frame<F: Frame>(&mut self) -> Result<F, TransportError>
    where
        Self: Sized,
    {
        let msg = self.recv()?;
        let Some((&tag, payload)) = msg.split_first() else {
            return Err(
                WireError { expected: F::NAME, got: WireGot::Empty, context: F::TAG_ERR }.into()
            );
        };
        if tag != F::TAG {
            return Err(WireError {
                expected: F::NAME,
                got: WireGot::Tag(tag),
                context: F::TAG_ERR,
            }
            .into());
        }
        F::decode(payload).map_err(TransportError::from)
    }

    /// Sends a single `u64` as a tagged [`U64Frame`].
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the peer is gone.
    fn send_u64(&mut self, v: u64) -> Result<(), TransportError>
    where
        Self: Sized,
    {
        self.send_frame(&U64Frame(v))
    }

    /// Receives a single `u64` frame.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the peer is gone;
    /// [`TransportError::Malformed`] on a wrong tag or a payload that is
    /// not exactly 8 bytes.
    fn recv_u64(&mut self) -> Result<u64, TransportError>
    where
        Self: Sized,
    {
        Ok(self.recv_frame::<U64Frame>()?.0)
    }

    /// Sends a slice of 128-bit blocks as one tagged [`Blocks`] frame
    /// (borrowing the slice; no copy besides serialization).
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the peer is gone.
    fn send_blocks(&mut self, blocks: &[Block]) -> Result<(), TransportError>
    where
        Self: Sized,
    {
        self.send_frame(&Blocks(Cow::Borrowed(blocks)))
    }

    /// Receives a tagged [`Blocks`] frame.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the peer is gone;
    /// [`TransportError::Malformed`] on a wrong tag or a payload length
    /// that is not a multiple of 16 bytes.
    fn recv_blocks(&mut self) -> Result<Vec<Block>, TransportError>
    where
        Self: Sized,
    {
        Ok(self.recv_frame::<Blocks>()?.0.into_owned())
    }
}
