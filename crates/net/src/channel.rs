//! Duplex in-process channels with byte accounting and a virtual clock.

use crate::transport::{Transport, TransportError};
use crate::NetworkModel;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::time::{Duration, Instant};

struct Packet {
    payload: Vec<u8>,
    /// Sender-side virtual departure time in seconds.
    depart_vtime: f64,
}

/// Point-in-time communication statistics, used to attribute traffic to
/// protocol phases (offline vs online).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommSnapshot {
    /// Bytes this endpoint has sent so far.
    pub bytes_sent: u64,
    /// Bytes this endpoint has received so far.
    pub bytes_received: u64,
    /// Messages sent so far.
    pub messages_sent: u64,
    /// Virtual elapsed time so far.
    pub vtime: Duration,
}

impl CommSnapshot {
    /// Traffic between an earlier snapshot and this one.
    #[must_use]
    pub fn since(&self, earlier: &CommSnapshot) -> CommSnapshot {
        CommSnapshot {
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            messages_sent: self.messages_sent - earlier.messages_sent,
            vtime: self.vtime.saturating_sub(earlier.vtime),
        }
    }

    /// Total bytes crossing the wire in both directions.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// One side of a duplex channel between the two protocol parties: the
/// simulated in-process implementation of [`Transport`].
///
/// Every [`Endpoint::send`]/[`Endpoint::recv`] advances a *virtual clock*:
/// real compute time since the previous channel operation is added, then the
/// network model charges serialization time (`len / bandwidth`) on send and
/// enforces `arrival ≥ departure + latency` on receive. The larger of the
/// two endpoints' final clocks is the simulated end-to-end protocol time.
pub struct Endpoint {
    tx: Sender<Packet>,
    rx: Receiver<Packet>,
    model: NetworkModel,
    vtime: f64,
    last_op: Instant,
    bytes_sent: u64,
    bytes_received: u64,
    messages_sent: u64,
    /// Real-time bound on a single blocking `recv` (a silent in-process
    /// peer is silent on the wall clock too).
    read_timeout: Option<Duration>,
    /// Virtual-clock deadline of the current phase budget: once `vtime`
    /// passes it, operations fail with `TimedOut`. This is the simulated
    /// equivalent of the TCP transport's wall-clock budget — a phase that
    /// would overrun its budget on the modelled network times out here too.
    vdeadline: Option<f64>,
    /// Reusable frame-serialization buffer (see [`Transport::take_scratch`]).
    scratch: Vec<u8>,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("bytes_sent", &self.bytes_sent)
            .field("bytes_received", &self.bytes_received)
            .field("vtime", &self.vtime)
            .finish()
    }
}

impl Endpoint {
    /// Creates a connected pair of endpoints sharing a network model.
    #[must_use]
    pub fn pair(model: NetworkModel) -> (Endpoint, Endpoint) {
        let (tx_ab, rx_ab) = unbounded();
        let (tx_ba, rx_ba) = unbounded();
        let mk = |tx, rx| Endpoint {
            tx,
            rx,
            model,
            vtime: 0.0,
            last_op: Instant::now(),
            bytes_sent: 0,
            bytes_received: 0,
            messages_sent: 0,
            read_timeout: None,
            vdeadline: None,
            scratch: Vec::new(),
        };
        (mk(tx_ab, rx_ba), mk(tx_ba, rx_ab))
    }

    fn absorb_compute(&mut self) {
        let now = Instant::now();
        self.vtime += now.duration_since(self.last_op).as_secs_f64();
        self.last_op = now;
    }

    /// Sends a byte message, taking ownership of the buffer. This is the
    /// zero-copy fast path: the buffer moves straight into the channel.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the peer endpoint was dropped.
    pub fn send_owned(&mut self, payload: Vec<u8>) -> Result<(), TransportError> {
        self.absorb_compute();
        if self.budget_spent() {
            return Err(TransportError::TimedOut);
        }
        self.vtime += self.model.transfer_secs(payload.len());
        self.bytes_sent += payload.len() as u64;
        self.messages_sent += 1;
        self.tx
            .send(Packet { payload, depart_vtime: self.vtime })
            .map_err(|_| TransportError::Closed)
    }

    /// Whether the virtual-clock phase budget has been exhausted.
    fn budget_spent(&self) -> bool {
        self.vdeadline.is_some_and(|dl| self.vtime > dl)
    }

    /// Sends a byte message to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the peer endpoint was dropped.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.send_owned(payload.to_vec())
    }

    /// Receives the next byte message from the peer (blocking).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the peer endpoint was dropped.
    pub fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        if self.budget_spent() {
            return Err(TransportError::TimedOut);
        }
        let pkt = match self.read_timeout {
            None => self.rx.recv().map_err(|_| TransportError::Closed)?,
            Some(t) => self.rx.recv_timeout(t).map_err(|e| match e {
                crossbeam::channel::RecvTimeoutError::Timeout => TransportError::TimedOut,
                crossbeam::channel::RecvTimeoutError::Disconnected => TransportError::Closed,
            })?,
        };
        self.absorb_compute();
        let arrival = pkt.depart_vtime + self.model.one_way_latency().as_secs_f64();
        self.vtime = self.vtime.max(arrival);
        self.bytes_received += pkt.payload.len() as u64;
        if self.budget_spent() {
            // The message arrived, but only after the phase's virtual-time
            // budget ran out: on the modelled network this phase overran.
            return Err(TransportError::TimedOut);
        }
        Ok(pkt.payload)
    }

    /// Current communication statistics.
    #[must_use]
    pub fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            bytes_sent: self.bytes_sent,
            bytes_received: self.bytes_received,
            messages_sent: self.messages_sent,
            vtime: Duration::from_secs_f64(self.vtime),
        }
    }

    /// Simulated elapsed time at this endpoint (compute + modelled network).
    #[must_use]
    pub fn vtime(&self) -> Duration {
        Duration::from_secs_f64(self.vtime)
    }

    /// The network model in force.
    #[must_use]
    pub fn model(&self) -> NetworkModel {
        self.model
    }
}

impl Transport for Endpoint {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        Endpoint::send(self, payload)
    }

    fn send_owned(&mut self, payload: Vec<u8>) -> Result<(), TransportError> {
        Endpoint::send_owned(self, payload)
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        Endpoint::recv(self)
    }

    fn snapshot(&self) -> CommSnapshot {
        Endpoint::snapshot(self)
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        self.read_timeout = timeout;
        Ok(())
    }

    fn set_phase_budget(&mut self, budget: Option<Duration>) -> Result<(), TransportError> {
        self.vdeadline = budget.map(|b| self.vtime + b.as_secs_f64());
        Ok(())
    }

    fn take_scratch(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.scratch)
    }

    fn store_scratch(&mut self, buf: Vec<u8>) {
        if buf.capacity() > self.scratch.capacity() {
            self.scratch = buf;
        }
    }
}

/// The dialing side of a simulated reconnectable link: every
/// [`dial`](SimDialer::dial) mints a fresh [`Endpoint`] pair and hands the
/// peer half to the matching [`SimListener`] — the in-process analogue of
/// `TcpTransport::connect` against a listening socket, used to exercise
/// reconnect-and-resume logic without real sockets.
#[derive(Debug)]
pub struct SimDialer {
    tx: Sender<Endpoint>,
    model: NetworkModel,
}

impl SimDialer {
    /// Establishes a fresh connection to the listener.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the listener is gone.
    pub fn dial(&self) -> Result<Endpoint, TransportError> {
        let (ours, theirs) = Endpoint::pair(self.model);
        self.tx.send(theirs).map_err(|_| TransportError::Closed)?;
        Ok(ours)
    }
}

/// The accepting side of a simulated reconnectable link.
#[derive(Debug)]
pub struct SimListener {
    rx: Receiver<Endpoint>,
}

impl SimListener {
    /// Blocks until the dialer connects.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the dialer is gone.
    pub fn accept(&self) -> Result<Endpoint, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Closed)
    }

    /// Blocks until the dialer connects, or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the dialer is gone, or
    /// [`TransportError::TimedOut`] if nothing dialed in time.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<Endpoint, TransportError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => TransportError::TimedOut,
            crossbeam::channel::RecvTimeoutError::Disconnected => TransportError::Closed,
        })
    }
}

/// Creates a simulated reconnectable link: a dialer/listener pair whose
/// connections are fresh [`Endpoint`] pairs under `model`.
#[must_use]
pub fn sim_link(model: NetworkModel) -> (SimDialer, SimListener) {
    let (tx, rx) = unbounded();
    (SimDialer { tx, model }, SimListener { rx })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::tags;
    use abnn2_crypto::Block;

    #[test]
    fn ping_pong_bytes_counted() {
        let (mut a, mut b) = Endpoint::pair(NetworkModel::instant());
        a.send(b"hello").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        b.send(b"worlds!").unwrap();
        assert_eq!(a.recv().unwrap(), b"worlds!");
        assert_eq!(a.snapshot().bytes_sent, 5);
        assert_eq!(a.snapshot().bytes_received, 7);
        assert_eq!(b.snapshot().bytes_sent, 7);
        assert_eq!(b.snapshot().messages_sent, 1);
    }

    #[test]
    fn u64_round_trip() {
        let (mut a, mut b) = Endpoint::pair(NetworkModel::instant());
        a.send_u64(0xdead_beef).unwrap();
        assert_eq!(b.recv_u64().unwrap(), 0xdead_beef);
        // One tag byte plus the 8-byte payload.
        assert_eq!(a.snapshot().bytes_sent, 9);
    }

    #[test]
    fn block_round_trip() {
        let (mut a, mut b) = Endpoint::pair(NetworkModel::instant());
        let blocks = vec![Block::from(1u128), Block::from(2u128)];
        a.send_blocks(&blocks).unwrap();
        assert_eq!(b.recv_blocks().unwrap(), blocks);
        assert_eq!(a.snapshot().bytes_sent, 33);
    }

    #[test]
    fn disconnect_surfaces_as_closed() {
        let (mut a, b) = Endpoint::pair(NetworkModel::instant());
        drop(b);
        assert_eq!(a.send(b"x"), Err(TransportError::Closed));
        assert_eq!(a.recv(), Err(TransportError::Closed));
    }

    #[test]
    fn mistagged_u64_rejected() {
        let (mut a, mut b) = Endpoint::pair(NetworkModel::instant());
        a.send(b"abc").unwrap();
        assert_eq!(b.recv_u64(), Err(TransportError::Malformed("u64 frame tag")));
    }

    #[test]
    fn short_u64_payload_rejected() {
        let (mut a, mut b) = Endpoint::pair(NetworkModel::instant());
        a.send(&[tags::U64, 1, 2, 3]).unwrap();
        assert_eq!(b.recv_u64(), Err(TransportError::Malformed("u64 frame length")));
    }

    #[test]
    fn malformed_blocks_rejected() {
        let (mut a, mut b) = Endpoint::pair(NetworkModel::instant());
        let mut ragged = vec![tags::BLOCKS];
        ragged.extend_from_slice(&[0u8; 17]);
        a.send(&ragged).unwrap();
        assert_eq!(b.recv_blocks(), Err(TransportError::Malformed("block batch frame length")));
    }

    #[test]
    fn latency_charged_on_receive() {
        let model = NetworkModel::new(Duration::from_millis(100), 1e9);
        let (mut a, mut b) = Endpoint::pair(model);
        a.send(b"x").unwrap();
        let _ = b.recv().unwrap();
        assert!(b.vtime() >= Duration::from_millis(50), "vtime = {:?}", b.vtime());
    }

    #[test]
    fn bandwidth_charged_on_send() {
        let model = NetworkModel::new(Duration::ZERO, 1000.0); // 1 KB/s
        let (mut a, _b) = Endpoint::pair(model);
        a.send(&[0u8; 500]).unwrap();
        assert!(a.vtime() >= Duration::from_millis(499), "vtime = {:?}", a.vtime());
    }

    #[test]
    fn snapshot_delta() {
        let (mut a, mut b) = Endpoint::pair(NetworkModel::instant());
        a.send(b"12345").unwrap();
        let s1 = a.snapshot();
        a.send(b"678").unwrap();
        let d = a.snapshot().since(&s1);
        assert_eq!(d.bytes_sent, 3);
        assert_eq!(d.messages_sent, 1);
        let _ = b.recv();
        let _ = b.recv();
    }

    #[test]
    fn pipelined_sends_share_latency() {
        // Two back-to-back sends: receiver should not pay 2x latency because
        // arrivals overlap (max, not sum).
        let model = NetworkModel::new(Duration::from_millis(100), f64::INFINITY);
        let (mut a, mut b) = Endpoint::pair(model);
        a.send(b"1").unwrap();
        a.send(b"2").unwrap();
        let _ = b.recv().unwrap();
        let _ = b.recv().unwrap();
        assert!(b.vtime() < Duration::from_millis(70), "vtime = {:?}", b.vtime());
    }

    #[test]
    fn owned_send_counts_like_borrowed() {
        let (mut a, mut b) = Endpoint::pair(NetworkModel::instant());
        a.send_owned(vec![1, 2, 3, 4]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(a.snapshot().bytes_sent, 4);
        assert_eq!(a.snapshot().messages_sent, 1);
    }
}
