//! Typed, versioned wire layer: one frame codec for every protocol message.
//!
//! Every message a protocol layer puts on a [`Transport`] is a **frame**: a
//! one-byte tag identifying the frame type, followed by that type's payload.
//! The [`Frame`] trait is the codec contract — a compile-time [`TAG`], a
//! human-readable [`NAME`], an allocation-free [`encode_into`], and a
//! [`decode`] that validates the payload and can only fail with a typed
//! [`WireError`], never panic. [`Transport::send_frame`] and
//! [`Transport::recv_frame`] are the only sanctioned way to move protocol
//! payloads; they prepend/verify the tag and reuse the connection's scratch
//! buffer so hot loops do not allocate per message.
//!
//! A mis-paired send/recv (one side sends garbled tables where the other
//! expects input labels) is caught at the tag byte and surfaces as a
//! [`WireError`] naming both the expected frame and the tag that actually
//! arrived, which flows through `OtError`/`GcError`/`ProtocolError` as a
//! `Malformed` variant carrying the expected frame's name. Truncated or
//! corrupted payloads fail the same way through [`Frame::decode`].
//!
//! The tag space is a protocol-versioned registry ([`tags`]): adding,
//! removing, or re-numbering a tag changes what crosses the wire and
//! requires a `PROTOCOL_VERSION` bump in the handshake (see DESIGN.md §3f
//! for the full frame table and the version-bump policy).
//!
//! [`TAG`]: Frame::TAG
//! [`NAME`]: Frame::NAME
//! [`encode_into`]: Frame::encode_into
//! [`decode`]: Frame::decode
//! [`Transport`]: crate::Transport
//! [`Transport::send_frame`]: crate::Transport::send_frame
//! [`Transport::recv_frame`]: crate::Transport::recv_frame

use abnn2_crypto::Block;
use std::borrow::Cow;

/// What actually arrived when a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireGot {
    /// A frame with the wrong tag byte.
    Tag(u8),
    /// A payload of the wrong length (in bytes, tag excluded).
    Len(usize),
    /// An empty message: not even a tag byte.
    Empty,
    /// A structurally sized payload whose contents are invalid.
    Value,
}

/// Typed decode failure: the single error every frame codec funnels into.
///
/// `context` is a static string naming the expected frame and the violated
/// check (e.g. `"hello frame length"`); it is what flows into
/// [`TransportError::Malformed`](crate::TransportError::Malformed) and from
/// there through every protocol error enum, so a failure deep inside a
/// session names the frame that was expected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError {
    /// Name of the frame type the decoder expected ([`Frame::NAME`]).
    pub expected: &'static str,
    /// What arrived instead.
    pub got: WireGot,
    /// Static check description, used as the `Malformed` payload.
    pub context: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.got {
            WireGot::Tag(t) => write!(
                f,
                "expected {} frame (tag 0x{:02x}), got tag 0x{t:02x} ({})",
                self.expected,
                tags::ALL.iter().find(|(_, n)| *n == self.expected).map_or(0, |&(t, _)| t),
                tags::name(t),
            ),
            WireGot::Len(n) => {
                write!(f, "{} ({} frame payload of {n} bytes)", self.context, self.expected)
            }
            WireGot::Empty => {
                write!(f, "empty message where a {} frame was expected", self.expected)
            }
            WireGot::Value => write!(f, "{} ({} frame)", self.context, self.expected),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for crate::TransportError {
    fn from(e: WireError) -> Self {
        crate::TransportError::Malformed(e.context)
    }
}

/// One typed protocol message: a tagged, versioned, validated codec.
///
/// Implementations must uphold two contracts checked by the repo's property
/// suite (`tests/wire_roundtrip.rs`):
///
/// 1. **Round trip**: `decode(encode(x)) == x` for every value.
/// 2. **Totality**: `decode` of *any* byte string returns `Ok` or a
///    [`WireError`] — it never panics, whatever truncation or corruption
///    the bytes suffered.
pub trait Frame: Sized {
    /// Registry tag prepended to every encoded frame (see [`tags`]).
    const TAG: u8;
    /// Human-readable frame name, carried inside [`WireError`].
    const NAME: &'static str;
    /// `Malformed` context for a tag mismatch on this frame type.
    const TAG_ERR: &'static str;

    /// Appends the payload (tag excluded) to `buf` without reallocation
    /// beyond what the payload itself requires.
    fn encode_into(&self, buf: &mut Vec<u8>);

    /// Parses and validates a payload (tag already stripped).
    ///
    /// # Errors
    ///
    /// [`WireError`] if the payload's length or contents are invalid.
    fn decode(payload: &[u8]) -> Result<Self, WireError>;
}

/// The frame tag registry: every tag that may appear on the wire, in one
/// place, so the space is auditable and collisions are impossible.
///
/// Re-numbering, adding, or removing a tag changes the transcript and MUST
/// be accompanied by a `PROTOCOL_VERSION` bump (DESIGN.md §3f).
pub mod tags {
    /// Little-endian `u64` scalar (lengths, counts, seeds).
    pub const U64: u8 = 0x01;
    /// Untyped batch of 128-bit blocks (generic helper traffic).
    pub const BLOCKS: u8 = 0x02;
    /// Base-OT sender's 64-byte Edwards setup point.
    pub const BASE_POINT: u8 = 0x10;
    /// Base-OT chooser's batch of 64-byte Edwards points.
    pub const BASE_POINT_BATCH: u8 = 0x11;
    /// Base-OT sender's batch of 32-byte ciphertext pairs.
    pub const BASE_CT_BATCH: u8 = 0x12;
    /// IKNP receiver's `u` column matrix (κ columns).
    pub const IKNP_COLUMNS: u8 = 0x13;
    /// IKNP sender's masked block pairs (2 blocks per OT).
    pub const IKNP_CTS: u8 = 0x14;
    /// Correlated-OT correction batch (ring elements).
    pub const OT_CORRECTIONS: u8 = 0x15;
    /// Vector-correlated-OT correction payload.
    pub const OT_VEC_PAYLOAD: u8 = 0x16;
    /// KK13 receiver's code-word column matrix (256 columns).
    pub const KK_COLUMNS: u8 = 0x17;
    /// Garbler's own input labels.
    pub const GC_LABELS: u8 = 0x20;
    /// Garbled AND-gate tables (2 blocks per gate).
    pub const GC_TABLES: u8 = 0x21;
    /// Packed output-wire decode bits.
    pub const GC_DECODE_MAP: u8 = 0x22;
    /// 56-byte handshake hello / reply / busy-reject frame.
    pub const HELLO: u8 = 0x30;
    /// KK13 masked triplet messages (the paper's γ(N−1) count).
    pub const TRIPLET_MASKED: u8 = 0x31;
    /// Blinded input shares entering the online phase.
    pub const BLINDED_INPUT: u8 = 0x32;
    /// Server's output logit shares.
    pub const OUTPUT_SHARES: u8 = 0x33;
    /// Packed ReLU sign bits (optimized comparison).
    pub const SIGN_BITS: u8 = 0x34;
    /// Refreshed shares for negative neurons (optimized ReLU).
    pub const NEG_SHARES: u8 = 0x35;
    /// Masked argmax class index (single byte).
    pub const MASKED_CLASS: u8 = 0x36;
    /// Beaver multiplication openings (ε, δ batch).
    pub const BEAVER_OPENINGS: u8 = 0x37;
    /// Precomputed triplet bundle (warm-pool serving).
    pub const BUNDLE: u8 = 0x38;
    /// Matrix-Beaver openings `D‖E` for one secret×secret matmul.
    pub const MATMUL_OPENINGS: u8 = 0x39;
    /// Silent-OT bootstrap column matrix (raw IKNP COT extension).
    pub const SILENT_BASE_COLUMNS: u8 = 0x40;
    /// Silent-OT derandomization bit vector (SPCOT paths and fragment
    /// choices).
    pub const SILENT_DERAND: u8 = 0x41;
    /// SPCOT per-level masked GGM sums (two blocks per tree level).
    pub const SILENT_SPCOT_MASKS: u8 = 0x42;
    /// SPCOT per-tree punctured correction blocks.
    pub const SILENT_SPCOT_SUMS: u8 = 0x43;

    /// Every registered tag with its frame name, in tag order. The
    /// wire-format table in DESIGN.md §3f mirrors this list.
    pub const ALL: &[(u8, &str)] = &[
        (U64, "u64"),
        (BLOCKS, "block batch"),
        (BASE_POINT, "base-OT setup point"),
        (BASE_POINT_BATCH, "base-OT point batch"),
        (BASE_CT_BATCH, "base-OT ciphertext batch"),
        (IKNP_COLUMNS, "IKNP column matrix"),
        (IKNP_CTS, "IKNP ciphertext batch"),
        (OT_CORRECTIONS, "C-OT correction batch"),
        (OT_VEC_PAYLOAD, "vector C-OT payload"),
        (KK_COLUMNS, "KK13 column matrix"),
        (GC_LABELS, "garbler input labels"),
        (GC_TABLES, "garbled AND tables"),
        (GC_DECODE_MAP, "output decode map"),
        (HELLO, "hello"),
        (TRIPLET_MASKED, "masked triplet batch"),
        (BLINDED_INPUT, "blinded input shares"),
        (OUTPUT_SHARES, "output shares"),
        (SIGN_BITS, "ReLU sign bits"),
        (NEG_SHARES, "negative-neuron shares"),
        (MASKED_CLASS, "masked class index"),
        (BEAVER_OPENINGS, "beaver openings"),
        (BUNDLE, "triplet bundle"),
        (MATMUL_OPENINGS, "matmul openings"),
        (SILENT_BASE_COLUMNS, "silent bootstrap column matrix"),
        (SILENT_DERAND, "silent derandomization bits"),
        (SILENT_SPCOT_MASKS, "SPCOT level masks"),
        (SILENT_SPCOT_SUMS, "SPCOT punctured sums"),
    ];

    /// Frame name for a tag, `"unregistered"` if the tag is not in [`ALL`].
    #[must_use]
    pub fn name(tag: u8) -> &'static str {
        ALL.iter().find(|&&(t, _)| t == tag).map_or("unregistered", |&(_, n)| n)
    }

    /// Allocation ceiling applied to frames whose tag is not in [`ALL`]:
    /// decoders reject unregistered tags anyway, so the pump only needs a
    /// bound tight enough to stop a hostile length prefix from reserving
    /// gigabytes before the tag check fires.
    pub const UNREGISTERED_MAX_LEN: usize = 1 << 20;

    /// Per-tag ceiling on the payload bytes that may follow the tag byte.
    ///
    /// These are denial-of-service allocation bounds, not protocol shapes:
    /// each ceiling is sized well above any legitimate payload for that tag
    /// (matrix-shaped frames scale with model size and get generous room)
    /// while staying far below the blanket
    /// [`MAX_FRAME_LEN`](crate::tcp::MAX_FRAME_LEN) so a forged length prefix can
    /// no longer reserve a gigabyte. Exact-size frames (hello, scalars,
    /// single bytes) are pinned to their wire size. Returns `None` for tags
    /// outside [`ALL`]; receivers bound those with
    /// [`UNREGISTERED_MAX_LEN`].
    #[must_use]
    pub const fn max_len(tag: u8) -> Option<usize> {
        match tag {
            U64 => Some(8),
            BASE_POINT => Some(64),
            HELLO => Some(56),
            MASKED_CLASS => Some(1),
            GC_DECODE_MAP => Some(1 << 24),
            BASE_POINT_BATCH | BASE_CT_BATCH => Some(1 << 20),
            SILENT_BASE_COLUMNS | SILENT_DERAND | SILENT_SPCOT_MASKS | SILENT_SPCOT_SUMS => {
                Some(1 << 20)
            }
            OUTPUT_SHARES | SIGN_BITS => Some(1 << 24),
            BLINDED_INPUT | NEG_SHARES | BEAVER_OPENINGS | MATMUL_OPENINGS => Some(1 << 26),
            BLOCKS | IKNP_COLUMNS | IKNP_CTS | OT_CORRECTIONS | OT_VEC_PAYLOAD | KK_COLUMNS
            | GC_LABELS | GC_TABLES | TRIPLET_MASKED | BUNDLE => Some(1 << 28),
            _ => None,
        }
    }
}

/// Defines a frame whose payload is a raw byte vector with a length
/// constraint: `exact = N` pins the payload to exactly `N` bytes, `unit =
/// N` requires a (possibly empty) multiple of `N` bytes. Generates the
/// struct, its [`Frame`] impl, and the static error contexts.
///
/// Call-site length checks that depend on runtime parameters (matrix
/// dimensions, ring width) stay with the protocol code operating on the
/// decoded payload; the frame enforces only its shape invariant.
#[macro_export]
macro_rules! byte_frame {
    ($(#[$doc:meta])* $vis:vis struct $name:ident, tag = $tag:expr, name = $fname:literal, exact = $len:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        $vis struct $name(pub Vec<u8>);

        impl $crate::wire::Frame for $name {
            const TAG: u8 = $tag;
            const NAME: &'static str = $fname;
            const TAG_ERR: &'static str = concat!($fname, " frame tag");

            fn encode_into(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.0);
            }

            fn decode(payload: &[u8]) -> Result<Self, $crate::wire::WireError> {
                if payload.len() != $len {
                    return Err($crate::wire::WireError {
                        expected: Self::NAME,
                        got: $crate::wire::WireGot::Len(payload.len()),
                        context: concat!($fname, " frame length"),
                    });
                }
                Ok($name(payload.to_vec()))
            }
        }
    };
    ($(#[$doc:meta])* $vis:vis struct $name:ident, tag = $tag:expr, name = $fname:literal, unit = $unit:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        $vis struct $name(pub Vec<u8>);

        impl $crate::wire::Frame for $name {
            const TAG: u8 = $tag;
            const NAME: &'static str = $fname;
            const TAG_ERR: &'static str = concat!($fname, " frame tag");

            fn encode_into(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.0);
            }

            fn decode(payload: &[u8]) -> Result<Self, $crate::wire::WireError> {
                if !payload.len().is_multiple_of($unit) {
                    return Err($crate::wire::WireError {
                        expected: Self::NAME,
                        got: $crate::wire::WireGot::Len(payload.len()),
                        context: concat!($fname, " frame length"),
                    });
                }
                Ok($name(payload.to_vec()))
            }
        }
    };
}

/// Defines a frame whose payload is a vector of 128-bit [`Block`]s, with a
/// granularity of `unit` blocks per logical element (e.g. 2 blocks per
/// garbled AND gate).
#[macro_export]
macro_rules! block_frame {
    ($(#[$doc:meta])* $vis:vis struct $name:ident, tag = $tag:expr, name = $fname:literal, unit = $unit:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        $vis struct $name(pub Vec<$crate::wire::WireBlock>);

        impl $crate::wire::Frame for $name {
            const TAG: u8 = $tag;
            const NAME: &'static str = $fname;
            const TAG_ERR: &'static str = concat!($fname, " frame tag");

            fn encode_into(&self, buf: &mut Vec<u8>) {
                buf.reserve(self.0.len() * 16);
                for b in &self.0 {
                    buf.extend_from_slice(&b.to_bytes());
                }
            }

            fn decode(payload: &[u8]) -> Result<Self, $crate::wire::WireError> {
                if !payload.len().is_multiple_of(16 * $unit) {
                    return Err($crate::wire::WireError {
                        expected: Self::NAME,
                        got: $crate::wire::WireGot::Len(payload.len()),
                        context: concat!($fname, " frame length"),
                    });
                }
                Ok($name(
                    payload
                        .chunks_exact(16)
                        .map(|c| {
                            $crate::wire::WireBlock::from_bytes(c.try_into().expect("16 bytes"))
                        })
                        .collect(),
                ))
            }
        }
    };
}

/// Re-export so the frame macros can name `Block` from any crate.
pub use abnn2_crypto::Block as WireBlock;

/// A single little-endian `u64`, the scalar workhorse frame behind
/// [`Transport::send_u64`](crate::Transport::send_u64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct U64Frame(pub u64);

impl Frame for U64Frame {
    const TAG: u8 = tags::U64;
    const NAME: &'static str = "u64";
    const TAG_ERR: &'static str = "u64 frame tag";

    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0.to_le_bytes());
    }

    fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let arr: [u8; 8] = payload.try_into().map_err(|_| WireError {
            expected: Self::NAME,
            got: WireGot::Len(payload.len()),
            context: "u64 frame length",
        })?;
        Ok(U64Frame(u64::from_le_bytes(arr)))
    }
}

/// An untyped batch of 128-bit blocks, the frame behind
/// [`Transport::send_blocks`](crate::Transport::send_blocks). Borrows on
/// encode (no copy of the block slice), owns on decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blocks<'a>(pub Cow<'a, [Block]>);

impl Frame for Blocks<'_> {
    const TAG: u8 = tags::BLOCKS;
    const NAME: &'static str = "block batch";
    const TAG_ERR: &'static str = "block batch frame tag";

    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.reserve(self.0.len() * 16);
        for b in self.0.iter() {
            buf.extend_from_slice(&b.to_bytes());
        }
    }

    fn decode(payload: &[u8]) -> Result<Self, WireError> {
        if !payload.len().is_multiple_of(16) {
            return Err(WireError {
                expected: Self::NAME,
                got: WireGot::Len(payload.len()),
                context: "block batch frame length",
            });
        }
        Ok(Blocks(Cow::Owned(
            payload
                .chunks_exact(16)
                .map(|c| Block::from_bytes(c.try_into().expect("16 bytes")))
                .collect(),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportError;

    #[test]
    fn tag_registry_has_no_collisions() {
        let mut seen = std::collections::HashSet::new();
        for &(tag, name) in tags::ALL {
            assert!(seen.insert(tag), "tag 0x{tag:02x} ({name}) registered twice");
        }
        assert_eq!(tags::name(tags::HELLO), "hello");
        assert_eq!(tags::name(0xFF), "unregistered");
    }

    #[test]
    fn u64_frame_round_trips() {
        let mut buf = vec![U64Frame::TAG];
        U64Frame(0xdead_beef_cafe).encode_into(&mut buf);
        assert_eq!(buf.len(), 9);
        assert_eq!(U64Frame::decode(&buf[1..]).unwrap(), U64Frame(0xdead_beef_cafe));
    }

    #[test]
    fn u64_frame_rejects_bad_length() {
        let err = U64Frame::decode(&[1, 2, 3]).unwrap_err();
        assert_eq!(err.got, WireGot::Len(3));
        assert_eq!(TransportError::from(err), TransportError::Malformed("u64 frame length"));
    }

    #[test]
    fn blocks_frame_round_trips_borrowed() {
        let blocks = vec![Block::from(1u128), Block::from(2u128)];
        let mut buf = Vec::new();
        Blocks(Cow::Borrowed(&blocks)).encode_into(&mut buf);
        let back = Blocks::decode(&buf).unwrap();
        assert_eq!(back.0.as_ref(), blocks.as_slice());
    }

    #[test]
    fn blocks_frame_rejects_ragged_payload() {
        let err = Blocks::decode(&[0u8; 17]).unwrap_err();
        assert_eq!(err.context, "block batch frame length");
    }

    #[test]
    fn wire_error_display_names_both_frames() {
        let e = WireError {
            expected: "hello",
            got: WireGot::Tag(tags::GC_TABLES),
            context: "hello frame tag",
        };
        let msg = e.to_string();
        assert!(msg.contains("hello"), "{msg}");
        assert!(msg.contains("garbled AND tables"), "{msg}");
    }
}
