//! Two-party communication substrate for the ABNN² reproduction.
//!
//! The paper evaluates on two physical machines whose link is shaped with
//! Linux `tc` into LAN and WAN profiles. We reproduce that with an
//! in-process substrate:
//!
//! * [`Endpoint`] — one side of a duplex byte channel with exact
//!   application-byte accounting (the numbers reported in the paper's
//!   "Comm." columns),
//! * [`NetworkModel`] — latency/bandwidth profiles ([`NetworkModel::lan`],
//!   [`NetworkModel::wan_secureml`], [`NetworkModel::wan_quotient`]),
//! * a **virtual clock** per endpoint: real compute time is measured between
//!   channel operations, and transfer time is charged per message as
//!   `bytes / bandwidth` at the sender plus one-way latency at the receiver
//!   (`arrival = max(local, departure + latency)`), which models pipelined
//!   streams the same way a shaped TCP link does,
//! * [`run_pair`] — spawns the two protocol parties on threads and collects
//!   a [`TrafficReport`].
//!
//! ```
//! use abnn2_net::{run_pair, NetworkModel};
//! let (a, b, report) = run_pair(NetworkModel::lan(), |ch| {
//!     ch.send(b"ping").unwrap();
//!     ch.recv().unwrap()
//! }, |ch| {
//!     let m = ch.recv().unwrap();
//!     ch.send(b"pong").unwrap();
//!     m
//! });
//! assert_eq!(a, b"pong");
//! assert_eq!(b, b"ping");
//! assert_eq!(report.total_bytes(), 8);
//! ```

pub mod channel;
pub mod model;
pub mod runner;

pub use channel::{ChannelError, CommSnapshot, Endpoint};
pub use model::NetworkModel;
pub use runner::{run_pair, TrafficReport};
