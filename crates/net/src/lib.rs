//! Two-party communication substrate for the ABNN² reproduction.
//!
//! Every protocol layer is generic over the [`Transport`] trait — a
//! reliable, ordered, message-oriented duplex channel. This crate ships the
//! implementations:
//!
//! * [`Endpoint`] — the simulated in-process transport: one side of a duplex
//!   byte channel with exact application-byte accounting (the numbers
//!   reported in the paper's "Comm." columns) and a **virtual clock**: real
//!   compute time is measured between channel operations, and transfer time
//!   is charged per message as `bytes / bandwidth` at the sender plus
//!   one-way latency at the receiver (`arrival = max(local, departure +
//!   latency)`), which models pipelined streams the same way a shaped TCP
//!   link does,
//! * [`TcpTransport`] — a real socket with length-prefixed framing and a
//!   write-coalescing buffer, for genuine two-process runs,
//! * [`FaultyTransport`] — a decorator that cuts/truncates/corrupts/delays
//!   traffic in either direction under a composable, seedable [`FaultPlan`],
//!   the engine of the chaos test harness,
//! * [`InstrumentedTransport`] — a decorator attributing traffic to named
//!   protocol phases over any inner transport,
//! * [`FrameBuffer`] — incremental, non-blocking reassembly and draining
//!   of the same length-prefixed frames over a readiness-driven socket,
//!   for event-loop servers that multiplex many sessions per thread,
//! * [`NetworkModel`] — latency/bandwidth profiles ([`NetworkModel::lan`],
//!   [`NetworkModel::wan_secureml`], [`NetworkModel::wan_quotient`]) for the
//!   simulated endpoint,
//! * [`run_pair`] — spawns the two protocol parties on threads over an
//!   [`Endpoint`] pair and collects a [`TrafficReport`],
//! * [`sim_link`] — a dialer/listener factory minting fresh [`Endpoint`]
//!   pairs, so reconnect-and-resume flows can be exercised in-process,
//! * [`ResilientDriver`] — connect → run → reconnect cycles under a
//!   [`RetryPolicy`] (capped exponential backoff with deterministic jitter)
//!   for any error type implementing [`Retryable`].
//!
//! Deadlines are first-class: [`Transport::set_read_timeout`] bounds how
//! long a single `recv` may block, and [`Transport::set_phase_budget`]
//! bounds a whole protocol phase; both surface as
//! [`TransportError::TimedOut`], on the wall clock for TCP and on the
//! virtual clock for the simulator.
//!
//! Byte accounting is defined at the application framing layer for every
//! transport, so a protocol moves exactly the same counted bytes over the
//! simulator and over TCP.
//!
//! Protocol payloads themselves travel as typed, tagged frames through the
//! [`wire`] module ([`Frame`], [`Transport::send_frame`],
//! [`Transport::recv_frame`]); raw `send`/`recv` below the frame layer are
//! reserved for transport-internal traffic and tests in this crate.
//!
//! ```
//! use abnn2_net::{run_pair, NetworkModel};
//! let (a, b, report) = run_pair(NetworkModel::lan(), |ch| {
//!     ch.send(b"ping").unwrap();
//!     ch.recv().unwrap()
//! }, |ch| {
//!     let m = ch.recv().unwrap();
//!     ch.send(b"pong").unwrap();
//!     m
//! });
//! assert_eq!(a, b"pong");
//! assert_eq!(b, b"ping");
//! assert_eq!(report.total_bytes(), 8);
//! ```

pub mod channel;
pub mod fault;
pub mod instrument;
pub mod model;
pub mod pump;
pub mod runner;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use channel::{sim_link, CommSnapshot, Endpoint, SimDialer, SimListener};
pub use fault::{Fault, FaultPlan, FaultyTransport};
pub use instrument::{InstrumentHandle, InstrumentedTransport, PhaseStats, TagStats};
pub use model::NetworkModel;
pub use pump::FrameBuffer;
pub use runner::{run_pair, ResilientDriver, RetryPolicy, Retryable, TrafficReport};
pub use tcp::TcpTransport;
pub use transport::{Transport, TransportError};
pub use wire::{Frame, WireError, WireGot};
