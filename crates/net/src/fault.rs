//! Fault-injecting [`Transport`] decorator: a reusable robustness harness.
//!
//! [`FaultyTransport`] wraps any inner transport and perturbs its *outgoing*
//! traffic according to a [`Fault`] plan: cut the connection after N
//! messages or bytes, truncate one message, or corrupt one message. All
//! typed helpers (`send_u64`, `send_blocks`) route through `send`/`send_owned`,
//! so a single interception point covers every protocol message kind —
//! truncating "message 3" truncates a GC table or an OT matrix just the
//! same.
//!
//! Receiving is passed through untouched; to test a receiver against garbage
//! the *peer* wraps its side.

use crate::channel::CommSnapshot;
use crate::transport::{Transport, TransportError};

/// What to do to this side's outgoing traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Deliver everything faithfully (baseline for contract tests).
    None,
    /// Fail with [`TransportError::Closed`] on send index `n` (0-based) and
    /// every send after it, simulating a peer that dies mid-protocol.
    CutAfterMessages(u64),
    /// Fail with [`TransportError::Closed`] once cumulative payload bytes
    /// sent would exceed `n`.
    CutAfterBytes(u64),
    /// Deliver send index `n` truncated to `keep` bytes (saturating).
    TruncateMessage {
        /// 0-based index of the send to truncate.
        index: u64,
        /// Number of leading bytes to keep.
        keep: usize,
    },
    /// Deliver send index `n` with one byte XOR-flipped.
    CorruptMessage {
        /// 0-based index of the send to corrupt.
        index: u64,
        /// Byte offset to flip (reduced modulo the message length).
        byte: usize,
    },
}

/// Decorator applying a [`Fault`] plan to an inner transport's sends.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    fault: Fault,
    sends: u64,
    payload_bytes_sent: u64,
}

impl<T: Transport> FaultyTransport<T> {
    pub fn new(inner: T, fault: Fault) -> Self {
        Self { inner, fault, sends: 0, payload_bytes_sent: 0 }
    }

    /// Unwraps the decorator, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Number of sends attempted so far (including faulted ones).
    #[must_use]
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Applies the fault plan to the payload for the current send index.
    /// `Ok(None)` means "deliver unchanged".
    fn perturb(&mut self, payload: &[u8]) -> Result<Option<Vec<u8>>, TransportError> {
        let index = self.sends;
        self.sends += 1;
        match self.fault {
            Fault::None => Ok(None),
            Fault::CutAfterMessages(n) => {
                if index >= n {
                    return Err(TransportError::Closed);
                }
                Ok(None)
            }
            Fault::CutAfterBytes(n) => {
                if self.payload_bytes_sent + payload.len() as u64 > n {
                    return Err(TransportError::Closed);
                }
                Ok(None)
            }
            Fault::TruncateMessage { index: target, keep } => {
                if index == target {
                    Ok(Some(payload[..keep.min(payload.len())].to_vec()))
                } else {
                    Ok(None)
                }
            }
            Fault::CorruptMessage { index: target, byte } => {
                if index == target && !payload.is_empty() {
                    let mut corrupted = payload.to_vec();
                    let at = byte % corrupted.len();
                    corrupted[at] ^= 0xA5;
                    Ok(Some(corrupted))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        match self.perturb(payload)? {
            Some(perturbed) => {
                self.payload_bytes_sent += perturbed.len() as u64;
                self.inner.send_owned(perturbed)
            }
            None => {
                self.payload_bytes_sent += payload.len() as u64;
                self.inner.send(payload)
            }
        }
    }

    fn send_owned(&mut self, payload: Vec<u8>) -> Result<(), TransportError> {
        match self.perturb(&payload)? {
            Some(perturbed) => {
                self.payload_bytes_sent += perturbed.len() as u64;
                self.inner.send_owned(perturbed)
            }
            None => {
                self.payload_bytes_sent += payload.len() as u64;
                self.inner.send_owned(payload)
            }
        }
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.inner.recv()
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        self.inner.flush()
    }

    fn snapshot(&self) -> CommSnapshot {
        self.inner.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Endpoint, NetworkModel};

    fn faulty_pair(fault: Fault) -> (FaultyTransport<Endpoint>, Endpoint) {
        let (a, b) = Endpoint::pair(NetworkModel::instant());
        (FaultyTransport::new(a, fault), b)
    }

    #[test]
    fn none_is_transparent() {
        let (mut a, mut b) = faulty_pair(Fault::None);
        a.send_u64(5).unwrap();
        assert_eq!(b.recv_u64().unwrap(), 5);
        assert_eq!(a.snapshot().bytes_sent, 8);
    }

    #[test]
    fn cut_after_messages() {
        let (mut a, mut b) = faulty_pair(Fault::CutAfterMessages(2));
        a.send(b"1").unwrap();
        a.send(b"2").unwrap();
        assert_eq!(a.send(b"3"), Err(TransportError::Closed));
        assert_eq!(b.recv().unwrap(), b"1");
        assert_eq!(b.recv().unwrap(), b"2");
    }

    #[test]
    fn cut_after_bytes() {
        let (mut a, _b) = faulty_pair(Fault::CutAfterBytes(10));
        a.send(&[0u8; 8]).unwrap();
        assert_eq!(a.send(&[0u8; 8]), Err(TransportError::Closed));
    }

    #[test]
    fn truncation_shortens_exactly_one_message() {
        let (mut a, mut b) = faulty_pair(Fault::TruncateMessage { index: 1, keep: 3 });
        a.send(b"first").unwrap();
        a.send(b"second").unwrap();
        a.send(b"third").unwrap();
        assert_eq!(b.recv().unwrap(), b"first");
        assert_eq!(b.recv().unwrap(), b"sec");
        assert_eq!(b.recv().unwrap(), b"third");
    }

    #[test]
    fn corruption_flips_one_byte() {
        let (mut a, mut b) = faulty_pair(Fault::CorruptMessage { index: 0, byte: 1 });
        a.send(&[1, 2, 3]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![1, 2 ^ 0xA5, 3]);
    }

    #[test]
    fn helpers_route_through_fault_plan() {
        // send_u64 / send_blocks must hit the same interception point.
        let (mut a, mut b) = faulty_pair(Fault::TruncateMessage { index: 0, keep: 4 });
        a.send_u64(u64::MAX).unwrap();
        assert_eq!(b.recv_u64(), Err(TransportError::Malformed("u64 message length")));
        let _ = a;
    }
}
