//! Fault-injecting [`Transport`] decorator: a reusable robustness harness.
//!
//! [`FaultyTransport`] wraps any inner transport and perturbs its traffic
//! according to a [`FaultPlan`] — a composable sequence of [`Fault`]s
//! covering both directions: cut the connection after N sends or N
//! receives, cut once cumulative bytes exceed a budget, truncate or corrupt
//! individual messages, or delay a message's delivery. All typed helpers
//! (`send_u64`, `send_blocks`) route through `send`/`send_owned` and
//! `recv`, so a single interception point per direction covers every
//! protocol message kind — truncating "message 3" truncates a GC table or
//! an OT matrix just the same.
//!
//! Plans compose: every fault in the plan is consulted for every message,
//! cuts first (any cut that fires wins), then perturbations accumulate in
//! plan order. [`FaultPlan::seeded`] derives a reproducible random plan
//! from a seed, the unit of the chaos property suite: for *any* seed, a
//! protocol run must either complete exactly or fail with a typed error —
//! never hang, panic, or return a wrong answer.

use crate::channel::CommSnapshot;
use crate::transport::{Transport, TransportError};
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// One perturbation of a transport's traffic. Send-side faults key on the
/// 0-based send index; recv-side faults on the 0-based receive index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Deliver everything faithfully (baseline for contract tests).
    None,
    /// Fail with [`TransportError::Closed`] on send index `n` (0-based) and
    /// every send after it, simulating a peer that dies mid-protocol.
    CutAfterMessages(u64),
    /// Fail with [`TransportError::Closed`] once cumulative payload bytes
    /// sent would exceed `n`.
    CutAfterBytes(u64),
    /// Fail with [`TransportError::Closed`] on receive index `n` (0-based)
    /// and every receive after it: the *incoming* half of the link dies, so
    /// a receiver can be tested against a vanishing peer without wrapping
    /// the peer's side.
    CutRecvAfterMessages(u64),
    /// Deliver send index `n` truncated to `keep` bytes (saturating).
    TruncateMessage {
        /// 0-based index of the send to truncate.
        index: u64,
        /// Number of leading bytes to keep.
        keep: usize,
    },
    /// Deliver send index `n` with one byte XOR-flipped.
    CorruptMessage {
        /// 0-based index of the send to corrupt.
        index: u64,
        /// Byte offset to flip (reduced modulo the message length).
        byte: usize,
    },
    /// Deliver send index `n` with byte 0 — the frame's tag byte —
    /// XOR-flipped. Unlike a payload corruption (undetectable in the
    /// semi-honest model without MACs), a flipped tag is *always* caught by
    /// the typed wire layer: the receiver's `recv_frame` fails with a
    /// `Malformed` error naming the frame it expected.
    FlipTag {
        /// 0-based index of the send whose tag byte to flip.
        index: u64,
    },
    /// Stall send index `n` for `millis` before handing it to the inner
    /// transport (a congestion spike; trips read timeouts on the peer).
    DelaySend {
        /// 0-based index of the send to delay.
        index: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Stall receive index `n` for `millis` before asking the inner
    /// transport for it (slow local delivery; trips phase budgets).
    DelayRecv {
        /// 0-based index of the receive to delay.
        index: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
}

/// A composable sequence of [`Fault`]s applied together.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: fully transparent.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single fault.
    #[must_use]
    pub fn single(fault: Fault) -> Self {
        FaultPlan { faults: vec![fault] }
    }

    /// A plan composing the given faults (applied in order per message).
    #[must_use]
    pub fn of(faults: Vec<Fault>) -> Self {
        FaultPlan { faults }
    }

    /// Appends a fault (builder-style).
    #[must_use]
    pub fn and(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The faults in this plan.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan perturbs anything at all.
    #[must_use]
    pub fn is_transparent(&self) -> bool {
        self.faults.iter().all(|f| matches!(f, Fault::None))
    }

    /// Derives a reproducible random plan from `seed`: zero to two faults
    /// drawn from the full catalogue, with indices in `0..horizon` (the
    /// expected message-count scale of the protocol under test) and delays
    /// bounded by 50 ms. Roughly a quarter of seeds yield the transparent
    /// plan, so chaos suites also cover the fault-free path.
    #[must_use]
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let horizon = horizon.max(1);
        let n_faults = match rng.gen_range(0u32..4) {
            0 => 0,
            1 | 2 => 1,
            _ => 2,
        };
        let mut faults = Vec::with_capacity(n_faults as usize);
        for _ in 0..n_faults {
            let index = rng.gen_range(0..horizon);
            faults.push(match rng.gen_range(0u32..7) {
                0 => Fault::CutAfterMessages(index),
                1 => Fault::CutAfterBytes(rng.gen_range(0..horizon * 64)),
                2 => Fault::CutRecvAfterMessages(index),
                3 => Fault::TruncateMessage { index, keep: rng.gen_range(0..64) },
                4 => Fault::CorruptMessage { index, byte: rng.gen_range(0..64) },
                5 => Fault::FlipTag { index },
                _ => Fault::DelaySend { index, millis: rng.gen_range(1..50) },
            });
        }
        FaultPlan { faults }
    }
}

impl From<Fault> for FaultPlan {
    fn from(fault: Fault) -> Self {
        FaultPlan::single(fault)
    }
}

/// Decorator applying a [`FaultPlan`] to an inner transport's traffic.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    sends: u64,
    recvs: u64,
    payload_bytes_sent: u64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with a single-fault plan (the common case).
    pub fn new(inner: T, fault: Fault) -> Self {
        Self::with_plan(inner, FaultPlan::single(fault))
    }

    /// Wraps `inner` with a composable fault plan.
    pub fn with_plan(inner: T, plan: FaultPlan) -> Self {
        Self { inner, plan, sends: 0, recvs: 0, payload_bytes_sent: 0 }
    }

    /// Unwraps the decorator, returning the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Number of sends attempted so far (including faulted ones).
    #[must_use]
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Number of receives attempted so far (including faulted ones).
    #[must_use]
    pub fn recvs(&self) -> u64 {
        self.recvs
    }

    /// Replaces the fault plan mid-stream (counters keep running), letting
    /// a harness arm a fault at a point only known at runtime — e.g. "cut
    /// two sends after the offline phase completed".
    pub fn set_fault(&mut self, fault: Fault) {
        self.plan = FaultPlan::single(fault);
    }

    /// Replaces the whole plan mid-stream (counters keep running).
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Applies the send-side faults for the current send index.
    /// `Ok(None)` means "deliver unchanged".
    fn perturb(&mut self, payload: &[u8]) -> Result<Option<Vec<u8>>, TransportError> {
        let index = self.sends;
        self.sends += 1;
        // Cuts fire before any delivery-altering fault.
        for fault in self.plan.faults.clone() {
            match fault {
                Fault::CutAfterMessages(n) if index >= n => return Err(TransportError::Closed),
                Fault::CutAfterBytes(n) if self.payload_bytes_sent + payload.len() as u64 > n => {
                    return Err(TransportError::Closed)
                }
                _ => {}
            }
        }
        let mut replacement: Option<Vec<u8>> = None;
        for fault in self.plan.faults.clone() {
            match fault {
                Fault::TruncateMessage { index: target, keep } if index == target => {
                    let cur = replacement.as_deref().unwrap_or(payload);
                    replacement = Some(cur[..keep.min(cur.len())].to_vec());
                }
                Fault::CorruptMessage { index: target, byte } if index == target => {
                    let mut cur = replacement.take().unwrap_or_else(|| payload.to_vec());
                    if !cur.is_empty() {
                        let at = byte % cur.len();
                        cur[at] ^= 0xA5;
                    }
                    replacement = Some(cur);
                }
                Fault::FlipTag { index: target } if index == target => {
                    let mut cur = replacement.take().unwrap_or_else(|| payload.to_vec());
                    if !cur.is_empty() {
                        cur[0] ^= 0xA5;
                    }
                    replacement = Some(cur);
                }
                Fault::DelaySend { index: target, millis } if index == target => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                _ => {}
            }
        }
        Ok(replacement)
    }

    /// Applies the recv-side faults for the current receive index before
    /// delegating to the inner transport.
    fn pre_recv(&mut self) -> Result<(), TransportError> {
        let index = self.recvs;
        self.recvs += 1;
        for fault in self.plan.faults.clone() {
            match fault {
                Fault::CutRecvAfterMessages(n) if index >= n => return Err(TransportError::Closed),
                Fault::DelayRecv { index: target, millis } if index == target => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        match self.perturb(payload)? {
            Some(perturbed) => {
                self.payload_bytes_sent += perturbed.len() as u64;
                self.inner.send_owned(perturbed)
            }
            None => {
                self.payload_bytes_sent += payload.len() as u64;
                self.inner.send(payload)
            }
        }
    }

    fn send_owned(&mut self, payload: Vec<u8>) -> Result<(), TransportError> {
        match self.perturb(&payload)? {
            Some(perturbed) => {
                self.payload_bytes_sent += perturbed.len() as u64;
                self.inner.send_owned(perturbed)
            }
            None => {
                self.payload_bytes_sent += payload.len() as u64;
                self.inner.send_owned(payload)
            }
        }
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.pre_recv()?;
        self.inner.recv()
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        self.inner.flush()
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_read_timeout(timeout)
    }

    fn set_phase_budget(&mut self, budget: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_phase_budget(budget)
    }

    fn mark_phase(&mut self, label: &str) {
        self.inner.mark_phase(label);
    }

    fn snapshot(&self) -> CommSnapshot {
        self.inner.snapshot()
    }

    fn take_scratch(&mut self) -> Vec<u8> {
        self.inner.take_scratch()
    }

    fn store_scratch(&mut self, buf: Vec<u8>) {
        self.inner.store_scratch(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Endpoint, NetworkModel};

    fn faulty_pair(fault: Fault) -> (FaultyTransport<Endpoint>, Endpoint) {
        let (a, b) = Endpoint::pair(NetworkModel::instant());
        (FaultyTransport::new(a, fault), b)
    }

    #[test]
    fn none_is_transparent() {
        let (mut a, mut b) = faulty_pair(Fault::None);
        a.send_u64(5).unwrap();
        assert_eq!(b.recv_u64().unwrap(), 5);
        assert_eq!(a.snapshot().bytes_sent, 9);
    }

    #[test]
    fn cut_after_messages() {
        let (mut a, mut b) = faulty_pair(Fault::CutAfterMessages(2));
        a.send(b"1").unwrap();
        a.send(b"2").unwrap();
        assert_eq!(a.send(b"3"), Err(TransportError::Closed));
        assert_eq!(b.recv().unwrap(), b"1");
        assert_eq!(b.recv().unwrap(), b"2");
    }

    #[test]
    fn cut_after_bytes() {
        let (mut a, _b) = faulty_pair(Fault::CutAfterBytes(10));
        a.send(&[0u8; 8]).unwrap();
        assert_eq!(a.send(&[0u8; 8]), Err(TransportError::Closed));
    }

    #[test]
    fn truncation_shortens_exactly_one_message() {
        let (mut a, mut b) = faulty_pair(Fault::TruncateMessage { index: 1, keep: 3 });
        a.send(b"first").unwrap();
        a.send(b"second").unwrap();
        a.send(b"third").unwrap();
        assert_eq!(b.recv().unwrap(), b"first");
        assert_eq!(b.recv().unwrap(), b"sec");
        assert_eq!(b.recv().unwrap(), b"third");
    }

    #[test]
    fn corruption_flips_one_byte() {
        let (mut a, mut b) = faulty_pair(Fault::CorruptMessage { index: 0, byte: 1 });
        a.send(&[1, 2, 3]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![1, 2 ^ 0xA5, 3]);
    }

    #[test]
    fn helpers_route_through_fault_plan() {
        // send_u64 / send_blocks must hit the same interception point. The
        // truncated frame keeps its tag byte, so the payload check fires.
        let (mut a, mut b) = faulty_pair(Fault::TruncateMessage { index: 0, keep: 4 });
        a.send_u64(u64::MAX).unwrap();
        assert_eq!(b.recv_u64(), Err(TransportError::Malformed("u64 frame length")));
        let _ = a;
    }

    #[test]
    fn flipped_tag_is_a_typed_frame_error() {
        let (mut a, mut b) = faulty_pair(Fault::FlipTag { index: 1 });
        a.send_u64(1).unwrap();
        a.send_u64(2).unwrap();
        assert_eq!(b.recv_u64().unwrap(), 1);
        // The payload is intact but the tag no longer matches: typed error
        // naming the expected frame, not a garbage value.
        assert_eq!(b.recv_u64(), Err(TransportError::Malformed("u64 frame tag")));
    }

    #[test]
    fn recv_cut_fails_the_receiving_side() {
        let (a, b) = Endpoint::pair(NetworkModel::instant());
        let mut a = FaultyTransport::new(a, Fault::CutRecvAfterMessages(1));
        let mut b = b;
        b.send(b"one").unwrap();
        b.send(b"two").unwrap();
        assert_eq!(a.recv().unwrap(), b"one");
        assert_eq!(a.recv(), Err(TransportError::Closed));
        // Sends are unaffected by a recv-side cut.
        a.send(b"still up").unwrap();
        assert_eq!(b.recv().unwrap(), b"still up");
    }

    #[test]
    fn delayed_recv_still_delivers() {
        let (a, mut b) = Endpoint::pair(NetworkModel::instant());
        let mut a = FaultyTransport::new(a, Fault::DelayRecv { index: 0, millis: 20 });
        b.send(b"slow").unwrap();
        let start = std::time::Instant::now();
        assert_eq!(a.recv().unwrap(), b"slow");
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn composed_plan_applies_faults_in_order() {
        let (a, mut b) = Endpoint::pair(NetworkModel::instant());
        let plan = FaultPlan::of(vec![
            Fault::TruncateMessage { index: 0, keep: 3 },
            Fault::CorruptMessage { index: 0, byte: 0 },
            Fault::CutAfterMessages(2),
        ]);
        let mut a = FaultyTransport::with_plan(a, plan);
        a.send(b"abcdef").unwrap();
        a.send(b"next").unwrap();
        assert_eq!(a.send(b"dead"), Err(TransportError::Closed));
        assert_eq!(b.recv().unwrap(), vec![b'a' ^ 0xA5, b'b', b'c']);
        assert_eq!(b.recv().unwrap(), b"next");
    }

    #[test]
    fn seeded_plans_are_reproducible_and_varied() {
        let a = FaultPlan::seeded(7, 40);
        let b = FaultPlan::seeded(7, 40);
        assert_eq!(a, b, "same seed, same plan");
        let distinct: std::collections::HashSet<String> =
            (0..32).map(|s| format!("{:?}", FaultPlan::seeded(s, 40))).collect();
        assert!(distinct.len() > 8, "plans must vary across seeds");
        assert!(
            (0..64).any(|s| FaultPlan::seeded(s, 40).is_transparent()),
            "some seeds must be fault-free"
        );
    }

    #[test]
    fn rearmed_fault_counts_from_wrap_time() {
        let (a, mut b) = Endpoint::pair(NetworkModel::instant());
        let mut a = FaultyTransport::new(a, Fault::None);
        a.send(b"1").unwrap();
        a.send(b"2").unwrap();
        // Arm a cut two sends from *now* using the running counter.
        a.set_fault(Fault::CutAfterMessages(a.sends() + 2));
        a.send(b"3").unwrap();
        a.send(b"4").unwrap();
        assert_eq!(a.send(b"5"), Err(TransportError::Closed));
        for expected in [b"1", b"2", b"3", b"4"] {
            assert_eq!(b.recv().unwrap(), expected);
        }
    }
}
