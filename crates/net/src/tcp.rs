//! Real TCP implementation of [`Transport`] with length-prefixed framing and
//! a write-coalescing buffer.
//!
//! ## Framing
//!
//! Each message is one frame: a 4-byte little-endian payload length followed
//! by the payload. Frames longer than [`MAX_FRAME_LEN`] are rejected as
//! malformed on receive, bounding allocation against a corrupt or hostile
//! peer.
//!
//! ## Write coalescing
//!
//! The OT and GC layers emit thousands of small messages (often single
//! `u64`s). Issuing one `write(2)` per 8-byte message would dominate runtime
//! with syscalls, so outgoing frames accumulate in a buffer flushed when it
//! exceeds [`FLUSH_THRESHOLD`], before any blocking [`recv`], and on drop.
//! Flushing before a receive keeps the protocol deadlock-free: each party's
//! pending requests always reach the peer before either side blocks.
//!
//! ## Accounting
//!
//! [`CommSnapshot`] counts **application payload bytes only** — the 4-byte
//! frame headers are excluded, so byte counts are identical to the simulated
//! [`Endpoint`](crate::Endpoint) run of the same protocol. `vtime` reports
//! real wall-clock time since the transport was created.

use crate::channel::CommSnapshot;
use crate::transport::{Transport, TransportError};
use abnn2_crypto::Block;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Instant;

/// Upper bound on a single frame's payload, checked on receive.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Outgoing buffer size that triggers an automatic flush.
const FLUSH_THRESHOLD: usize = 1 << 16;

/// [`Transport`] over a real TCP stream. See the module docs for framing,
/// coalescing, and accounting semantics.
pub struct TcpTransport {
    stream: TcpStream,
    /// Pending framed bytes not yet written to the socket.
    wbuf: Vec<u8>,
    /// Reusable serialization buffer for `send_blocks`.
    scratch: Vec<u8>,
    bytes_sent: u64,
    bytes_received: u64,
    messages_sent: u64,
    created: Instant,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peer", &self.stream.peer_addr().ok())
            .field("bytes_sent", &self.bytes_sent)
            .field("bytes_received", &self.bytes_received)
            .finish()
    }
}

impl TcpTransport {
    /// Wraps an already-connected stream. Disables Nagle's algorithm: the
    /// write-coalescing buffer already batches small messages, and the
    /// protocols are latency-bound request/response exchanges.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the socket options cannot be set
    /// (the stream is unusable).
    pub fn from_stream(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true).map_err(|_| TransportError::Closed)?;
        Ok(Self {
            stream,
            wbuf: Vec::with_capacity(FLUSH_THRESHOLD),
            scratch: Vec::new(),
            bytes_sent: 0,
            bytes_received: 0,
            messages_sent: 0,
            created: Instant::now(),
        })
    }

    /// Connects to a listening peer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the connection cannot be
    /// established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr).map_err(|_| TransportError::Closed)?;
        Self::from_stream(stream)
    }

    /// Binds `addr`, accepts exactly one connection, and wraps it.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if binding or accepting fails.
    pub fn accept(addr: impl ToSocketAddrs) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr).map_err(|_| TransportError::Closed)?;
        let (stream, _) = listener.accept().map_err(|_| TransportError::Closed)?;
        Self::from_stream(stream)
    }

    /// The local socket address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the socket is gone.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, TransportError> {
        self.stream.local_addr().map_err(|_| TransportError::Closed)
    }

    fn write_all(&mut self, start: usize) -> Result<(), TransportError> {
        self.stream.write_all(&self.wbuf[start..]).map_err(|_| TransportError::Closed)
    }

    /// Appends one framed message to the write buffer, flushing if the
    /// buffer has grown past the threshold.
    fn enqueue_frame(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        debug_assert!(payload.len() <= MAX_FRAME_LEN, "oversized frame");
        self.wbuf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload);
        self.bytes_sent += payload.len() as u64;
        self.messages_sent += 1;
        if self.wbuf.len() >= FLUSH_THRESHOLD {
            self.flush_wbuf()?;
        }
        Ok(())
    }

    fn flush_wbuf(&mut self) -> Result<(), TransportError> {
        if !self.wbuf.is_empty() {
            self.write_all(0)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), TransportError> {
        // Orderly EOF, reset, and every other read failure all mean the peer
        // is unreachable; framing violations are caught by the length check.
        self.stream.read_exact(buf).map_err(|_| TransportError::Closed)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.enqueue_frame(payload)
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        // Push our pending requests out before blocking on the peer's reply.
        self.flush_wbuf()?;
        let mut len_bytes = [0u8; 4];
        self.read_exact(&mut len_bytes)?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            return Err(TransportError::Malformed("frame length exceeds maximum"));
        }
        let mut payload = vec![0u8; len];
        self.read_exact(&mut payload)?;
        self.bytes_received += len as u64;
        Ok(payload)
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        self.flush_wbuf()?;
        self.stream.flush().map_err(|_| TransportError::Closed)
    }

    fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            bytes_sent: self.bytes_sent,
            bytes_received: self.bytes_received,
            messages_sent: self.messages_sent,
            vtime: self.created.elapsed(),
        }
    }

    fn send_blocks(&mut self, blocks: &[Block]) -> Result<(), TransportError> {
        // Serialize through the reusable scratch buffer instead of
        // allocating a fresh Vec per call.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.reserve(blocks.len() * 16);
        for b in blocks {
            scratch.extend_from_slice(&b.to_bytes());
        }
        let result = self.enqueue_frame(&scratch);
        self.scratch = scratch;
        result
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Best-effort: deliver anything still coalescing so the peer's
        // in-flight recv sees the data before the FIN.
        let _ = self.flush_wbuf();
        let _ = self.stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    /// Connected localhost transport pair.
    fn tcp_pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = thread::spawn(move || TcpTransport::connect(addr).expect("connect"));
        let (stream, _) = listener.accept().expect("accept");
        let server = TcpTransport::from_stream(stream).expect("wrap");
        (server, client.join().expect("join"))
    }

    #[test]
    fn round_trip_and_accounting() {
        let (mut s, mut c) = tcp_pair();
        thread::scope(|scope| {
            scope.spawn(|| {
                c.send(b"ping").unwrap();
                c.send_u64(7).unwrap();
                c.send_blocks(&[Block::from(9u128)]).unwrap();
                assert_eq!(c.recv().unwrap(), b"pong");
            });
            assert_eq!(s.recv().unwrap(), b"ping");
            assert_eq!(s.recv_u64().unwrap(), 7);
            assert_eq!(s.recv_blocks().unwrap(), vec![Block::from(9u128)]);
            s.send(b"pong").unwrap();
            s.flush().unwrap();
        });
        // Payload-only accounting: 4 + 8 + 16 bytes sent by the client.
        assert_eq!(c.snapshot().bytes_sent, 28);
        assert_eq!(c.snapshot().messages_sent, 3);
        assert_eq!(s.snapshot().bytes_received, 28);
    }

    #[test]
    fn coalesced_small_sends_arrive_in_order() {
        let (mut s, mut c) = tcp_pair();
        thread::scope(|scope| {
            scope.spawn(|| {
                for v in 0..1000u64 {
                    c.send_u64(v).unwrap();
                }
                // Messages are still coalescing; the recv below flushes them.
                assert_eq!(c.recv().unwrap(), b"done");
            });
            for v in 0..1000u64 {
                assert_eq!(s.recv_u64().unwrap(), v);
            }
            s.send(b"done").unwrap();
            s.flush().unwrap();
        });
    }

    #[test]
    fn disconnect_is_closed() {
        let (s, mut c) = tcp_pair();
        drop(s);
        assert_eq!(c.recv(), Err(TransportError::Closed));
    }

    #[test]
    fn oversized_frame_header_is_malformed() {
        let (s, mut c) = tcp_pair();
        let mut raw = s.stream.try_clone().expect("clone");
        drop(s);
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        assert_eq!(c.recv(), Err(TransportError::Malformed("frame length exceeds maximum")));
    }
}
