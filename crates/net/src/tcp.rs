//! Real TCP implementation of [`Transport`] with length-prefixed framing and
//! a write-coalescing buffer.
//!
//! ## Framing
//!
//! Each message is one frame: a 4-byte little-endian payload length followed
//! by the payload. Frames longer than [`MAX_FRAME_LEN`] are rejected as
//! malformed on receive, bounding allocation against a corrupt or hostile
//! peer.
//!
//! ## Write coalescing
//!
//! The OT and GC layers emit thousands of small messages (often single
//! `u64`s). Issuing one `write(2)` per 8-byte message would dominate runtime
//! with syscalls, so outgoing frames accumulate in a buffer flushed when it
//! exceeds a fixed threshold, before any blocking receive, and on drop.
//! Flushing before a receive keeps the protocol deadlock-free: each party's
//! pending requests always reach the peer before either side blocks.
//!
//! ## Accounting
//!
//! [`CommSnapshot`] counts **application payload bytes only** — the 4-byte
//! frame headers are excluded, so byte counts are identical to the simulated
//! [`Endpoint`](crate::Endpoint) run of the same protocol. `vtime` reports
//! real wall-clock time since the transport was created.

use crate::channel::CommSnapshot;
use crate::transport::{Transport, TransportError};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Upper bound on a single frame's payload, checked on receive.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Outgoing buffer size that triggers an automatic flush.
const FLUSH_THRESHOLD: usize = 1 << 16;

/// [`Transport`] over a real TCP stream. See the module docs for framing,
/// coalescing, and accounting semantics.
///
/// ## Deadlines
///
/// [`set_read_timeout`](Transport::set_read_timeout) bounds each blocking
/// read via `SO_RCVTIMEO`; [`set_phase_budget`](Transport::set_phase_budget)
/// starts a wall-clock budget covering every subsequent operation. Both
/// surface as [`TransportError::TimedOut`], so a silent-but-connected peer
/// is distinguishable from a dead one (`Closed`).
///
/// ## Error stickiness
///
/// Once the connection fails (`Closed`, or a timeout that interrupted a
/// frame mid-read, after which the framing boundary is lost), the error is
/// latched and every subsequent operation reports it. This also surfaces
/// write/flush failures that would otherwise only be observable — and
/// silently swallowed — during drop.
pub struct TcpTransport {
    stream: TcpStream,
    /// Pending framed bytes not yet written to the socket.
    wbuf: Vec<u8>,
    /// Reusable frame-serialization buffer (see [`Transport::take_scratch`]).
    scratch: Vec<u8>,
    bytes_sent: u64,
    bytes_received: u64,
    messages_sent: u64,
    created: Instant,
    /// Per-read timeout requested via `set_read_timeout`.
    read_timeout: Option<Duration>,
    /// Wall-clock deadline of the current phase budget, if any.
    phase_deadline: Option<Instant>,
    /// `SO_RCVTIMEO` currently applied to the socket (avoids a syscall per
    /// read when the effective timeout has not changed).
    applied_timeout: Option<Duration>,
    /// First fatal error observed; latched and re-reported thereafter.
    sticky: Option<TransportError>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peer", &self.stream.peer_addr().ok())
            .field("bytes_sent", &self.bytes_sent)
            .field("bytes_received", &self.bytes_received)
            .finish()
    }
}

impl TcpTransport {
    /// Wraps an already-connected stream. Disables Nagle's algorithm: the
    /// write-coalescing buffer already batches small messages, and the
    /// protocols are latency-bound request/response exchanges.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the socket options cannot be set
    /// (the stream is unusable).
    pub fn from_stream(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true).map_err(|_| TransportError::Closed)?;
        Ok(Self {
            stream,
            wbuf: Vec::with_capacity(FLUSH_THRESHOLD),
            scratch: Vec::new(),
            bytes_sent: 0,
            bytes_received: 0,
            messages_sent: 0,
            created: Instant::now(),
            read_timeout: None,
            phase_deadline: None,
            applied_timeout: None,
            sticky: None,
        })
    }

    /// Connects to a listening peer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the connection cannot be
    /// established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr).map_err(|_| TransportError::Closed)?;
        Self::from_stream(stream)
    }

    /// Binds `addr`, accepts exactly one connection, and wraps it.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if binding or accepting fails.
    pub fn accept(addr: impl ToSocketAddrs) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr).map_err(|_| TransportError::Closed)?;
        let (stream, _) = listener.accept().map_err(|_| TransportError::Closed)?;
        Self::from_stream(stream)
    }

    /// The local socket address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the socket is gone.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, TransportError> {
        self.stream.local_addr().map_err(|_| TransportError::Closed)
    }

    /// Latches `err` as the connection's terminal state and returns it.
    fn fail(&mut self, err: TransportError) -> TransportError {
        if self.sticky.is_none() {
            self.sticky = Some(err);
        }
        err
    }

    /// Re-reports a previously latched failure, if any.
    fn check_sticky(&self) -> Result<(), TransportError> {
        match self.sticky {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Appends one framed message to the write buffer, flushing if the
    /// buffer has grown past the threshold.
    fn enqueue_frame(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        debug_assert!(payload.len() <= MAX_FRAME_LEN, "oversized frame");
        self.check_sticky()?;
        if self.phase_expired() {
            return Err(self.fail(TransportError::TimedOut));
        }
        self.wbuf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload);
        self.bytes_sent += payload.len() as u64;
        self.messages_sent += 1;
        if self.wbuf.len() >= FLUSH_THRESHOLD {
            self.flush_wbuf()?;
        }
        Ok(())
    }

    fn flush_wbuf(&mut self) -> Result<(), TransportError> {
        self.check_sticky()?;
        if !self.wbuf.is_empty() {
            match self.stream.write_all(&self.wbuf) {
                Ok(()) => self.wbuf.clear(),
                Err(e) => {
                    let err = if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                        TransportError::TimedOut
                    } else {
                        TransportError::Closed
                    };
                    return Err(self.fail(err));
                }
            }
        }
        Ok(())
    }

    /// Whether the phase deadline budget has been exhausted.
    fn phase_expired(&self) -> bool {
        self.phase_deadline.is_some_and(|dl| Instant::now() >= dl)
    }

    /// Applies the effective `SO_RCVTIMEO` for the next read: the tighter of
    /// the per-read timeout and the remaining phase budget. Fails with
    /// `TimedOut` if the budget is already spent.
    fn apply_read_deadline(&mut self) -> Result<(), TransportError> {
        let mut effective = self.read_timeout;
        if let Some(dl) = self.phase_deadline {
            let Some(remaining) =
                dl.checked_duration_since(Instant::now()).filter(|r| !r.is_zero())
            else {
                return Err(TransportError::TimedOut);
            };
            effective = Some(effective.map_or(remaining, |t| t.min(remaining)));
        }
        if effective != self.applied_timeout {
            self.stream.set_read_timeout(effective).map_err(|_| TransportError::Closed)?;
            self.applied_timeout = effective;
        }
        Ok(())
    }

    /// Fills `buf` completely, looping on short reads: a frame header or
    /// payload split across TCP segments is reassembled rather than
    /// misreported. EOF mid-frame is `Closed`; a deadline expiry is
    /// `TimedOut`. A timeout that strikes *mid-frame* (after some bytes of
    /// the frame arrived) loses the framing boundary, so it is latched as
    /// sticky; a timeout at a frame boundary leaves the connection usable.
    fn read_full(&mut self, buf: &mut [u8], mid_frame: bool) -> Result<(), TransportError> {
        let mut filled = 0;
        while filled < buf.len() {
            if let Err(e) = self.apply_read_deadline() {
                if mid_frame || filled > 0 {
                    return Err(self.fail(e));
                }
                return Err(e);
            }
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) => return Err(self.fail(TransportError::Closed)),
                Ok(n) => filled += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if mid_frame || filled > 0 {
                        return Err(self.fail(TransportError::TimedOut));
                    }
                    return Err(TransportError::TimedOut);
                }
                Err(_) => return Err(self.fail(TransportError::Closed)),
            }
        }
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.enqueue_frame(payload)
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        // Push our pending requests out before blocking on the peer's reply.
        self.flush_wbuf()?;
        let mut len_bytes = [0u8; 4];
        self.read_full(&mut len_bytes, false)?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            return Err(TransportError::Malformed("frame length exceeds maximum"));
        }
        let payload = if len == 0 {
            Vec::new()
        } else {
            // Read the tag byte first so the allocation is bounded by the
            // tag's registry ceiling, not the blanket MAX_FRAME_LEN.
            let mut tag = [0u8; 1];
            self.read_full(&mut tag, true)?;
            let ceiling = crate::wire::tags::max_len(tag[0])
                .unwrap_or(crate::wire::tags::UNREGISTERED_MAX_LEN);
            if len - 1 > ceiling {
                return Err(TransportError::Malformed("frame length exceeds tag ceiling"));
            }
            let mut payload = vec![0u8; len];
            payload[0] = tag[0];
            self.read_full(&mut payload[1..], true)?;
            payload
        };
        self.bytes_received += len as u64;
        Ok(payload)
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        self.flush_wbuf()?;
        match self.stream.flush() {
            Ok(()) => Ok(()),
            Err(_) => Err(self.fail(TransportError::Closed)),
        }
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        self.read_timeout = timeout;
        Ok(())
    }

    fn set_phase_budget(&mut self, budget: Option<Duration>) -> Result<(), TransportError> {
        self.phase_deadline = budget.map(|b| Instant::now() + b);
        Ok(())
    }

    fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            bytes_sent: self.bytes_sent,
            bytes_received: self.bytes_received,
            messages_sent: self.messages_sent,
            vtime: self.created.elapsed(),
        }
    }

    fn take_scratch(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.scratch)
    }

    fn store_scratch(&mut self, buf: Vec<u8>) {
        if buf.capacity() > self.scratch.capacity() {
            self.scratch = buf;
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Best-effort and guaranteed non-panicking: deliver anything still
        // coalescing so the peer's in-flight recv sees the data before the
        // FIN. A failure here is already latched as sticky (and was thus
        // observable on the explicit send/recv/flush paths); there is no one
        // left to report to during drop.
        let _ = self.flush_wbuf();
        let _ = self.stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abnn2_crypto::Block;
    use std::net::TcpListener;
    use std::thread;

    /// Connected localhost transport pair.
    fn tcp_pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = thread::spawn(move || TcpTransport::connect(addr).expect("connect"));
        let (stream, _) = listener.accept().expect("accept");
        let server = TcpTransport::from_stream(stream).expect("wrap");
        (server, client.join().expect("join"))
    }

    #[test]
    fn round_trip_and_accounting() {
        let (mut s, mut c) = tcp_pair();
        thread::scope(|scope| {
            scope.spawn(|| {
                c.send(b"ping").unwrap();
                c.send_u64(7).unwrap();
                c.send_blocks(&[Block::from(9u128)]).unwrap();
                assert_eq!(c.recv().unwrap(), b"pong");
            });
            assert_eq!(s.recv().unwrap(), b"ping");
            assert_eq!(s.recv_u64().unwrap(), 7);
            assert_eq!(s.recv_blocks().unwrap(), vec![Block::from(9u128)]);
            s.send(b"pong").unwrap();
            s.flush().unwrap();
        });
        // Payload-only accounting: 4 raw + (1+8) u64 frame + (1+16) block
        // frame bytes sent by the client.
        assert_eq!(c.snapshot().bytes_sent, 30);
        assert_eq!(c.snapshot().messages_sent, 3);
        assert_eq!(s.snapshot().bytes_received, 30);
    }

    #[test]
    fn coalesced_small_sends_arrive_in_order() {
        let (mut s, mut c) = tcp_pair();
        thread::scope(|scope| {
            scope.spawn(|| {
                for v in 0..1000u64 {
                    c.send_u64(v).unwrap();
                }
                // Messages are still coalescing; the recv below flushes them.
                assert_eq!(c.recv().unwrap(), b"done");
            });
            for v in 0..1000u64 {
                assert_eq!(s.recv_u64().unwrap(), v);
            }
            s.send(b"done").unwrap();
            s.flush().unwrap();
        });
    }

    #[test]
    fn disconnect_is_closed() {
        let (s, mut c) = tcp_pair();
        drop(s);
        assert_eq!(c.recv(), Err(TransportError::Closed));
    }

    #[test]
    fn oversized_frame_header_is_malformed() {
        let (s, mut c) = tcp_pair();
        let mut raw = s.stream.try_clone().expect("clone");
        drop(s);
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        assert_eq!(c.recv(), Err(TransportError::Malformed("frame length exceeds maximum")));
    }

    /// A frame whose header and payload arrive in four separate TCP
    /// segments must be reassembled, not misreported as malformed.
    #[test]
    fn frame_split_across_segments_is_reassembled() {
        let (s, mut c) = tcp_pair();
        let mut raw = s.stream.try_clone().expect("clone");
        drop(s);
        let writer = thread::spawn(move || {
            let frame: Vec<u8> = 6u32.to_le_bytes().iter().copied().chain(*b"abcdef").collect();
            for chunk in frame.chunks(3) {
                raw.write_all(chunk).unwrap();
                raw.flush().unwrap();
                thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        assert_eq!(c.recv().unwrap(), b"abcdef");
        writer.join().unwrap();
    }

    /// EOF in the middle of a frame is a vanished peer (`Closed`), not a
    /// framing violation (`Malformed`).
    #[test]
    fn eof_mid_frame_is_closed() {
        let (s, mut c) = tcp_pair();
        let mut raw = s.stream.try_clone().expect("clone");
        drop(s);
        raw.write_all(&10u32.to_le_bytes()).unwrap();
        raw.write_all(b"abc").unwrap();
        raw.flush().unwrap();
        drop(raw);
        assert_eq!(c.recv(), Err(TransportError::Closed));
    }

    /// A read timeout at a frame boundary is `TimedOut` and leaves the
    /// connection usable once the peer speaks again.
    #[test]
    fn silent_peer_times_out_then_recovers() {
        let (mut s, mut c) = tcp_pair();
        c.set_read_timeout(Some(std::time::Duration::from_millis(40))).unwrap();
        let start = std::time::Instant::now();
        assert_eq!(c.recv(), Err(TransportError::TimedOut));
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        s.send(b"late").unwrap();
        s.flush().unwrap();
        assert_eq!(c.recv().unwrap(), b"late");
    }

    /// A timeout that interrupts a frame mid-read loses the framing
    /// boundary: the error is latched and every later operation reports it.
    #[test]
    fn mid_frame_timeout_is_sticky() {
        let (s, mut c) = tcp_pair();
        let raw = s.stream.try_clone().expect("clone");
        drop(s);
        let mut raw = raw;
        raw.write_all(&8u32.to_le_bytes()).unwrap();
        raw.write_all(b"abc").unwrap();
        raw.flush().unwrap();
        c.set_read_timeout(Some(std::time::Duration::from_millis(40))).unwrap();
        assert_eq!(c.recv(), Err(TransportError::TimedOut));
        // Even after the rest arrives, the boundary is gone: still failed.
        raw.write_all(b"defgh").unwrap();
        raw.flush().unwrap();
        assert_eq!(c.recv(), Err(TransportError::TimedOut));
        assert_eq!(c.send(b"x"), Err(TransportError::TimedOut));
    }

    /// An exhausted phase budget fails sends and receives with `TimedOut`
    /// even when no per-read timeout is configured.
    #[test]
    fn phase_budget_exhaustion_times_out() {
        let (_s, mut c) = tcp_pair();
        c.set_phase_budget(Some(std::time::Duration::from_millis(30))).unwrap();
        let start = std::time::Instant::now();
        assert_eq!(c.recv(), Err(TransportError::TimedOut));
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        thread::sleep(std::time::Duration::from_millis(35));
        assert_eq!(c.send(b"x"), Err(TransportError::TimedOut));
    }
}
