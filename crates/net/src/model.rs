//! Latency/bandwidth profiles matching the paper's test environments.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A symmetric network profile: one-way latency plus bandwidth.
///
/// The paper's environments:
/// * LAN — same rack, sub-millisecond RTT, ~1 GB/s,
/// * WAN (Table 3, as in SecureML's setup) — 9 MB/s, 72 ms RTT,
/// * WAN (Table 5, as in QUOTIENT's setup) — 24.3 MB/s, 40 ms RTT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    one_way_latency: Duration,
    bandwidth_bytes_per_sec: f64,
}

impl NetworkModel {
    /// Builds a profile from an RTT and a bandwidth in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bytes_per_sec` is not strictly positive.
    #[must_use]
    pub fn new(rtt: Duration, bandwidth_bytes_per_sec: f64) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0, "bandwidth must be positive");
        NetworkModel { one_way_latency: rtt / 2, bandwidth_bytes_per_sec }
    }

    /// An instantaneous link: no latency or bandwidth cost is charged, so
    /// the virtual clock reflects pure compute time. Used for LAN numbers
    /// (the paper's LAN link is fast enough that compute dominates).
    #[must_use]
    pub fn instant() -> Self {
        NetworkModel { one_way_latency: Duration::ZERO, bandwidth_bytes_per_sec: f64::INFINITY }
    }

    /// Local-area network: 0.2 ms RTT, 1.25 GB/s (10 Gbit/s).
    #[must_use]
    pub fn lan() -> Self {
        NetworkModel::new(Duration::from_micros(200), 1.25e9)
    }

    /// The Table 3 WAN: 9 MB/s bandwidth, 72 ms RTT (SecureML's setting).
    #[must_use]
    pub fn wan_secureml() -> Self {
        NetworkModel::new(Duration::from_millis(72), 9.0e6)
    }

    /// The Table 4/5 WAN: 24.3 MB/s bandwidth, 40 ms RTT (QUOTIENT's
    /// setting).
    #[must_use]
    pub fn wan_quotient() -> Self {
        NetworkModel::new(Duration::from_millis(40), 24.3e6)
    }

    /// One-way propagation latency.
    #[must_use]
    pub fn one_way_latency(&self) -> Duration {
        self.one_way_latency
    }

    /// Link bandwidth in bytes per second.
    #[must_use]
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.bandwidth_bytes_per_sec
    }

    /// Seconds needed to push `bytes` onto the wire.
    #[must_use]
    pub fn transfer_secs(&self, bytes: usize) -> f64 {
        if self.bandwidth_bytes_per_sec.is_infinite() {
            0.0
        } else {
            bytes as f64 / self.bandwidth_bytes_per_sec
        }
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::instant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        assert_eq!(NetworkModel::wan_secureml().one_way_latency(), Duration::from_millis(36));
        assert_eq!(NetworkModel::wan_secureml().bandwidth_bytes_per_sec(), 9.0e6);
        assert_eq!(NetworkModel::wan_quotient().one_way_latency(), Duration::from_millis(20));
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let m = NetworkModel::wan_secureml();
        assert!((m.transfer_secs(9_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(NetworkModel::instant().transfer_secs(1 << 30), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = NetworkModel::new(Duration::ZERO, 0.0);
    }
}
