//! The Paillier cryptosystem (additively homomorphic).
//!
//! Standard simplified variant with `g = n + 1`:
//!
//! * `Enc(m; r) = (1 + n·m) · rⁿ mod n²`,
//! * `Dec(c) = L(c^φ mod n²) · φ⁻¹ mod n` with `L(x) = (x−1)/n`,
//! * `Enc(a)·Enc(b) = Enc(a+b)`, `Enc(a)^k = Enc(k·a)`.

use crate::mont::MontCtx;
use crate::prime::generate_prime;
use crate::BigUint;
use rand::Rng;

/// A Paillier ciphertext (an element of ℤ*_{n²}).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext(pub BigUint);

impl Ciphertext {
    /// Serialized size in bytes for a given key (2·|n|).
    #[must_use]
    pub fn byte_len(pk: &PublicKey) -> usize {
        pk.n_squared.bits().div_ceil(8)
    }

    /// Fixed-width little-endian encoding.
    #[must_use]
    pub fn to_bytes(&self, pk: &PublicKey) -> Vec<u8> {
        let mut b = self.0.to_bytes_le();
        b.resize(Self::byte_len(pk), 0);
        b
    }

    /// Decodes a fixed-width encoding.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Ciphertext(BigUint::from_bytes_le(bytes))
    }
}

/// The public encryption key.
#[derive(Debug, Clone)]
pub struct PublicKey {
    n: BigUint,
    n_squared: BigUint,
    ctx_n2: MontCtx,
}

/// The secret decryption key.
#[derive(Debug, Clone)]
pub struct SecretKey {
    phi: BigUint,
    phi_inv: BigUint,
}

/// A key pair.
#[derive(Debug, Clone)]
pub struct Keypair {
    /// Public half.
    pub public: PublicKey,
    /// Secret half.
    pub secret: SecretKey,
}

impl Keypair {
    /// Generates a key with an `n_bits`-bit modulus (so each prime has
    /// `n_bits/2` bits). The reproduction default is 1024 (research-scale;
    /// see the crate security note).
    ///
    /// # Panics
    ///
    /// Panics if `n_bits < 32`.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(n_bits: usize, rng: &mut R) -> Self {
        assert!(n_bits >= 32, "modulus too small");
        loop {
            let p = generate_prime(n_bits / 2, rng);
            let q = generate_prime(n_bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            let Some(phi_inv) = phi.mod_inverse(&n) else {
                continue;
            };
            let n_squared = n.mul(&n);
            let ctx_n2 = MontCtx::new(&n_squared);
            return Keypair {
                public: PublicKey { n, n_squared, ctx_n2 },
                secret: SecretKey { phi, phi_inv },
            };
        }
    }
}

/// Error returned when a received modulus cannot form a public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidModulusError;

impl std::fmt::Display for InvalidModulusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "paillier modulus must be odd and larger than one")
    }
}

impl std::error::Error for InvalidModulusError {}

impl PublicKey {
    /// Reconstructs a public key from a transmitted modulus (`g = n + 1` is
    /// implicit in this Paillier variant).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidModulusError`] if `n` is even or trivially small.
    pub fn from_modulus(n: BigUint) -> Result<Self, InvalidModulusError> {
        if !n.is_odd() || n.bits() < 16 {
            return Err(InvalidModulusError);
        }
        let n_squared = n.mul(&n);
        let ctx_n2 = MontCtx::new(&n_squared);
        Ok(PublicKey { n, n_squared, ctx_n2 })
    }

    /// The modulus n (plaintext space ℤ_n).
    #[must_use]
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Encrypts a plaintext in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= n`.
    #[must_use]
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> Ciphertext {
        assert!(m.cmp(&self.n) == std::cmp::Ordering::Less, "plaintext out of range");
        let r = loop {
            let r = BigUint::random_below(&self.n, rng);
            if !r.is_zero() {
                break r;
            }
        };
        // (1 + n·m) mod n²
        let gm = BigUint::one().add(&self.n.mul(m)).rem(&self.n_squared);
        let rn = self.ctx_n2.pow_mod(&r, &self.n);
        Ciphertext(self.ctx_n2.mul_mod(&gm, &rn))
    }

    /// Encrypts a small integer.
    #[must_use]
    pub fn encrypt_u64<R: Rng + ?Sized>(&self, m: u64, rng: &mut R) -> Ciphertext {
        self.encrypt(&BigUint::from_u64(m), rng)
    }

    /// Homomorphic addition: `Enc(a) ⊞ Enc(b) = Enc(a + b mod n)`.
    #[must_use]
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext(self.ctx_n2.mul_mod(&a.0, &b.0))
    }

    /// Homomorphic scalar multiplication: `Enc(a)^k = Enc(k·a mod n)`.
    #[must_use]
    pub fn scalar_mul(&self, a: &Ciphertext, k: &BigUint) -> Ciphertext {
        Ciphertext(self.ctx_n2.pow_mod(&a.0, k))
    }

    /// The multiplicative inverse of a ciphertext — an encryption of the
    /// negated plaintext. Used to handle signed weights.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not invertible (never for honest
    /// ciphertexts).
    #[must_use]
    pub fn neg(&self, a: &Ciphertext) -> Ciphertext {
        Ciphertext(a.0.mod_inverse(&self.n_squared).expect("ciphertext is a unit"))
    }
}

impl SecretKey {
    /// Decrypts a ciphertext to its plaintext in `[0, n)`.
    #[must_use]
    pub fn decrypt(&self, pk: &PublicKey, c: &Ciphertext) -> BigUint {
        let u = pk.ctx_n2.pow_mod(&c.0, &self.phi);
        // L(u) = (u - 1) / n
        let l = u.sub(&BigUint::one()).div_rem(&pk.n).0;
        l.mul(&self.phi_inv).rem(&pk.n)
    }

    /// Decrypts to a `u64` (low bits).
    #[must_use]
    pub fn decrypt_u64(&self, pk: &PublicKey, c: &Ciphertext) -> u64 {
        self.decrypt(pk, c).low_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn test_keypair(seed: u64) -> Keypair {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Keypair::generate(256, &mut rng)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let kp = test_keypair(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for m in [0u64, 1, 42, u64::MAX] {
            let c = kp.public.encrypt_u64(m, &mut rng);
            assert_eq!(kp.secret.decrypt_u64(&kp.public, &c), m, "m = {m}");
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let kp = test_keypair(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let c1 = kp.public.encrypt_u64(7, &mut rng);
        let c2 = kp.public.encrypt_u64(7, &mut rng);
        assert_ne!(c1, c2);
        assert_eq!(kp.secret.decrypt_u64(&kp.public, &c1), 7);
        assert_eq!(kp.secret.decrypt_u64(&kp.public, &c2), 7);
    }

    #[test]
    fn homomorphic_addition() {
        let kp = test_keypair(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let a = kp.public.encrypt_u64(1000, &mut rng);
        let b = kp.public.encrypt_u64(234, &mut rng);
        let s = kp.public.add(&a, &b);
        assert_eq!(kp.secret.decrypt_u64(&kp.public, &s), 1234);
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let kp = test_keypair(7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let a = kp.public.encrypt_u64(321, &mut rng);
        let c = kp.public.scalar_mul(&a, &BigUint::from_u64(1000));
        assert_eq!(kp.secret.decrypt_u64(&kp.public, &c), 321_000);
    }

    #[test]
    fn negation_handles_signed_weights() {
        let kp = test_keypair(9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let a = kp.public.encrypt_u64(5, &mut rng);
        // Enc(-5) ⊞ Enc(12) = Enc(7).
        let c = kp.public.add(&kp.public.neg(&a), &kp.public.encrypt_u64(12, &mut rng));
        assert_eq!(kp.secret.decrypt_u64(&kp.public, &c), 7);
    }

    #[test]
    fn homomorphic_dot_product() {
        // The exact operation the MiniONN baseline performs.
        let kp = test_keypair(11);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let xs = [3u64, 1, 4, 1, 5];
        let ws = [2i64, -7, 1, 8, -2];
        let cts: Vec<Ciphertext> = xs.iter().map(|&x| kp.public.encrypt_u64(x, &mut rng)).collect();
        let mut acc = kp.public.encrypt_u64(0, &mut rng);
        for (ct, &w) in cts.iter().zip(&ws) {
            let base = if w < 0 { kp.public.neg(ct) } else { ct.clone() };
            let term = kp.public.scalar_mul(&base, &BigUint::from_u64(w.unsigned_abs()));
            acc = kp.public.add(&acc, &term);
        }
        let expect: i64 = xs.iter().zip(&ws).map(|(&x, &w)| x as i64 * w).sum();
        // expect = 6 - 7 + 4 + 8 - 10 = 1 (non-negative here).
        assert_eq!(kp.secret.decrypt_u64(&kp.public, &acc), expect as u64);
    }

    #[test]
    fn ciphertext_serialization_round_trip() {
        let kp = test_keypair(13);
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let c = kp.public.encrypt_u64(99, &mut rng);
        let bytes = c.to_bytes(&kp.public);
        assert_eq!(bytes.len(), Ciphertext::byte_len(&kp.public));
        let c2 = Ciphertext::from_bytes(&bytes);
        assert_eq!(kp.secret.decrypt_u64(&kp.public, &c2), 99);
    }
}
