//! Miller–Rabin probabilistic prime generation.

use crate::mont::MontCtx;
use crate::BigUint;
use rand::Rng;

/// Small primes for fast trial division.
const SMALL_PRIMES: [u64; 30] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113,
];

/// Miller–Rabin with `rounds` random bases (error ≤ 4^{-rounds}).
///
/// # Panics
///
/// Panics if `n` is even and greater than 2 is handled; zero is rejected
/// as composite.
#[must_use]
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if n.bits() <= 1 {
        return false; // 0, 1
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p);
        if n.cmp(&pb) == std::cmp::Ordering::Equal {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    if !n.is_odd() {
        return false;
    }

    // n - 1 = d · 2^s with d odd.
    let n_minus_1 = n.sub(&BigUint::one());
    let s = {
        let mut s = 0usize;
        while !n_minus_1.bit(s) {
            s += 1;
        }
        s
    };
    let d = n_minus_1.shr(s);
    let ctx = MontCtx::new(n);

    'witness: for _ in 0..rounds {
        let a = loop {
            let a = BigUint::random_below(&n_minus_1, rng);
            if a.bits() > 1 {
                break a;
            }
        };
        let mut x = ctx.pow_mod(&a, &d);
        if x.cmp(&BigUint::one()) == std::cmp::Ordering::Equal
            || x.cmp(&n_minus_1) == std::cmp::Ordering::Equal
        {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = ctx.mul_mod(&x, &x);
            if x.cmp(&n_minus_1) == std::cmp::Ordering::Equal {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 8`.
#[must_use]
pub fn generate_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 8, "prime size too small");
    loop {
        let mut cand = BigUint::random_bits(bits, rng);
        if !cand.is_odd() {
            cand = cand.add(&BigUint::one());
        }
        if is_probable_prime(&cand, 16, rng) {
            return cand;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn known_primes_and_composites() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 101, 65537, 2_147_483_647] {
            assert!(is_probable_prime(&BigUint::from_u64(p), 16, &mut rng), "{p} is prime");
        }
        for c in [0u64, 1, 4, 100, 65535, 2_147_483_647 + 2] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), 16, &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for c in [561u64, 1105, 1729, 2465, 6601] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), 16, &mut rng), "{c}");
        }
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = generate_prime(128, &mut rng);
        assert_eq!(p.bits(), 128);
        assert!(p.is_odd());
        assert!(is_probable_prime(&p, 24, &mut rng));
    }

    #[test]
    fn generated_primes_differ() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let p = generate_prime(96, &mut rng);
        let q = generate_prime(96, &mut rng);
        assert_ne!(p, q);
    }
}
