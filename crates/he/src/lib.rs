//! Additively homomorphic encryption substrate.
//!
//! The MiniONN baseline performs its offline linear layers with lattice SIMD
//! HE (SEAL). That library does not exist here, so we substitute the
//! closest from-scratch equivalent exercising the same code path —
//! client-encrypted inputs, server-side homomorphic linear algebra — using
//! the Paillier cryptosystem:
//!
//! * [`bigint::BigUint`] — arbitrary-precision unsigned arithmetic,
//! * [`mont::MontCtx`] — Montgomery multiplication/exponentiation,
//! * [`prime`] — Miller–Rabin prime generation,
//! * [`paillier`] — keygen/encrypt/decrypt plus the homomorphic operations
//!   (ciphertext addition, plaintext-scalar multiplication).
//!
//! The substitution is documented in `DESIGN.md` §2: both SEAL and Paillier
//! put a large, bitwidth-independent ciphertext on the wire per plaintext,
//! which is precisely the property the paper's MiniONN comparison exercises.

pub mod bigint;
pub mod mont;
pub mod paillier;
pub mod prime;

pub use bigint::BigUint;
pub use paillier::{Ciphertext, Keypair, PublicKey, SecretKey};
