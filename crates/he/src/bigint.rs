//! Arbitrary-precision unsigned integers (little-endian `u64` limbs).
//!
//! Only what Paillier needs: schoolbook multiplication, shift-subtract
//! division (used rarely — hot paths go through Montgomery form), and an
//! extended binary GCD for modular inversion.

use rand::Rng;
use std::cmp::Ordering;

/// An unsigned big integer, limbs little-endian, normalized (no trailing
/// zero limbs; zero is the empty limb vector).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    #[must_use]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    #[must_use]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Creates from a `u64`.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Creates from a `u128`.
    #[must_use]
    pub fn from_u128(v: u128) -> Self {
        let mut out = BigUint { limbs: vec![v as u64, (v >> 64) as u64] };
        out.normalize();
        out
    }

    /// Creates from little-endian limbs.
    #[must_use]
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Creates from little-endian bytes.
    #[must_use]
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.chunks(8) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            limbs.push(u64::from_le_bytes(b));
        }
        Self::from_limbs(limbs)
    }

    /// Little-endian byte encoding (no trailing zeros, empty for zero).
    #[must_use]
    pub fn to_bytes_le(&self) -> Vec<u8> {
        let mut out: Vec<u8> = self.limbs.iter().flat_map(|l| l.to_le_bytes()).collect();
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// A uniformly random integer with exactly `bits` bits (top bit set).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    #[must_use]
    pub fn random_bits<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits > 0, "bit count must be positive");
        let n_limbs = bits.div_ceil(64);
        let mut limbs: Vec<u64> = (0..n_limbs).map(|_| rng.gen()).collect();
        let top = (bits - 1) % 64;
        let last = limbs.last_mut().expect("at least one limb");
        *last &= (1u128 << (top + 1)).wrapping_sub(1) as u64;
        *last |= 1u64 << top;
        Self::from_limbs(limbs)
    }

    /// A uniformly random integer below `bound` (rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[must_use]
    pub fn random_below<R: Rng + ?Sized>(bound: &BigUint, rng: &mut R) -> Self {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bits();
        loop {
            let n_limbs = bits.div_ceil(64);
            let mut limbs: Vec<u64> = (0..n_limbs).map(|_| rng.gen()).collect();
            let excess = n_limbs * 64 - bits;
            if excess > 0 {
                let last = limbs.last_mut().expect("at least one limb");
                *last >>= excess;
            }
            let cand = Self::from_limbs(limbs);
            if cand.cmp(bound) == Ordering::Less {
                return cand;
            }
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True if the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is odd.
    #[must_use]
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Bit length (0 for zero).
    #[must_use]
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * self.limbs.len() - top.leading_zeros() as usize,
        }
    }

    /// Bit `i` (false beyond the top).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        self.limbs.get(i / 64).is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    /// The limbs, little-endian.
    #[must_use]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Low 64 bits.
    #[must_use]
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Addition.
    #[must_use]
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = self.limbs.get(i).copied().unwrap_or(0) as u128;
            let b = other.limbs.get(i).copied().unwrap_or(0) as u128;
            let s = a + b + carry as u128;
            out.push(s as u64);
            carry = (s >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Subtraction.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    #[must_use]
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self.cmp(other) != Ordering::Less, "big integer underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i128;
            let b = other.limbs.get(i).copied().unwrap_or(0) as i128;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Schoolbook multiplication.
    #[must_use]
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Left shift by `k` bits.
    #[must_use]
    pub fn shl(&self, k: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = k / 64;
        let bit_shift = k % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift > 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `k` bits.
    #[must_use]
    pub fn shr(&self, k: usize) -> BigUint {
        let limb_shift = k / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = k % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut v = self.limbs[i] >> bit_shift;
            if bit_shift > 0 && i + 1 < self.limbs.len() {
                v |= self.limbs[i + 1] << (64 - bit_shift);
            }
            out.push(v);
        }
        BigUint::from_limbs(out)
    }

    /// Quotient and remainder (binary shift-subtract long division).
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    #[must_use]
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp(divisor) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        let shift = self.bits() - divisor.bits();
        let mut rem = self.clone();
        let mut quo = vec![0u64; shift / 64 + 1];
        let mut d = divisor.shl(shift);
        for i in (0..=shift).rev() {
            if rem.cmp(&d) != Ordering::Less {
                rem = rem.sub(&d);
                quo[i / 64] |= 1u64 << (i % 64);
            }
            d = d.shr(1);
        }
        (BigUint::from_limbs(quo), rem)
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// `(self + other) mod m`, assuming both inputs are already below `m`.
    #[must_use]
    pub fn add_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let s = self.add(other);
        if s.cmp(m) == Ordering::Less {
            s
        } else {
            s.sub(m)
        }
    }

    /// Modular inverse via the extended Euclidean algorithm.
    ///
    /// Returns `None` if `gcd(self, m) != 1`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or one.
    #[must_use]
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        assert!(m.bits() > 1, "modulus must exceed one");
        // Iterative extended Euclid with signed coefficients tracked as
        // (sign, magnitude).
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        let mut t0: (bool, BigUint) = (false, BigUint::zero()); // coeff of m
        let mut t1: (bool, BigUint) = (false, BigUint::one()); // coeff of self
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q*t1
            let qt1 = q.mul(&t1.1);
            let t2 = signed_sub(&t0, &(t1.0, qt1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if r0.cmp(&BigUint::one()) != Ordering::Equal {
            return None;
        }
        // t0 is the inverse coefficient; bring into [0, m).
        let (neg, mag) = t0;
        let mag = mag.rem(m);
        Some(if neg && !mag.is_zero() { m.sub(&mag) } else { mag })
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &BigUint) -> Ordering {
        // Limbs are normalized (no leading zeros), so length orders first.
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &BigUint) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// `a - b` on (sign, magnitude) pairs.
fn signed_sub(a: &(bool, BigUint), b: &(bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        (an, bn) if an == bn => {
            // same sign: magnitude subtraction, sign flips if |b| > |a|
            if a.1.cmp(&b.1) != Ordering::Less {
                (an, a.1.sub(&b.1))
            } else {
                (!an, b.1.sub(&a.1))
            }
        }
        // a - (-b) = a + b with a's sign; (-a) - b = -(a + b)
        (an, _) => (an, a.1.add(&b.1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn basic_arithmetic() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(1);
        let s = a.add(&b);
        assert_eq!(s.limbs(), &[0, 1]);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.bits(), 65);
    }

    #[test]
    fn mul_known() {
        let a = BigUint::from_u128(u128::MAX);
        let sq = a.mul(&a);
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let expect = BigUint::one().shl(256).sub(&BigUint::one().shl(129)).add(&BigUint::one());
        assert_eq!(sq, expect);
    }

    #[test]
    fn div_rem_known() {
        let a = BigUint::from_u64(1000);
        let b = BigUint::from_u64(7);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.low_u64(), 142);
        assert_eq!(r.low_u64(), 6);
    }

    #[test]
    fn bytes_round_trip() {
        let a = BigUint::from_u128(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        assert_eq!(BigUint::from_bytes_le(&a.to_bytes_le()), a);
        assert!(BigUint::zero().to_bytes_le().is_empty());
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for bits in [1usize, 7, 64, 65, 512] {
            assert_eq!(BigUint::random_bits(bits, &mut rng).bits(), bits);
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let bound = BigUint::from_u64(1000);
        for _ in 0..50 {
            assert!(BigUint::random_below(&bound, &mut rng).cmp(&bound) == Ordering::Less);
        }
    }

    #[test]
    fn mod_inverse_known() {
        let a = BigUint::from_u64(3);
        let m = BigUint::from_u64(7);
        assert_eq!(a.mod_inverse(&m).expect("coprime").low_u64(), 5); // 3·5 = 15 ≡ 1
        let even = BigUint::from_u64(4);
        let m8 = BigUint::from_u64(8);
        assert!(even.mod_inverse(&m8).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn add_sub_round_trip(a: u128, b: u128) {
            let (x, y) = (BigUint::from_u128(a), BigUint::from_u128(b));
            prop_assert_eq!(x.add(&y).sub(&y), x);
        }

        #[test]
        fn mul_matches_u128(a: u64, b: u64) {
            let p = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
            prop_assert_eq!(p, BigUint::from_u128(a as u128 * b as u128));
        }

        #[test]
        fn div_rem_invariant(a: u128, b in 1u128..) {
            let (x, y) = (BigUint::from_u128(a), BigUint::from_u128(b));
            let (q, r) = x.div_rem(&y);
            prop_assert!(r.cmp(&y) == Ordering::Less);
            prop_assert_eq!(q.mul(&y).add(&r), x);
        }

        #[test]
        fn shifts_invert(a: u128, k in 0usize..100) {
            let x = BigUint::from_u128(a);
            prop_assert_eq!(x.shl(k).shr(k), x);
        }

        #[test]
        fn mod_inverse_correct(a in 1u64.., seed: u64) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = BigUint::random_bits(128, &mut rng);
            let x = BigUint::from_u64(a);
            if let Some(inv) = x.mod_inverse(&m) {
                prop_assert_eq!(x.mul(&inv).rem(&m), BigUint::one());
            }
        }

        #[test]
        fn bit_accessor_matches_shift(a: u128, i in 0usize..128) {
            let x = BigUint::from_u128(a);
            prop_assert_eq!(x.bit(i), (a >> i) & 1 == 1);
        }
    }
}
