//! Montgomery multiplication and exponentiation (CIOS method).
//!
//! All Paillier hot paths (`r^n mod n²`, decryption exponentiations,
//! homomorphic scalar multiplication) run in Montgomery form; plain
//! shift-subtract division is only used for setup conversions.

use crate::BigUint;

/// A Montgomery context for an odd modulus `n`: precomputes `-n⁻¹ mod 2⁶⁴`
/// and `R² mod n` where `R = 2^{64·limbs}`.
#[derive(Debug, Clone)]
pub struct MontCtx {
    n: Vec<u64>,
    n0_inv: u64,
    r2: BigUint,
    modulus: BigUint,
}

impl MontCtx {
    /// Builds the context.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is even or zero.
    #[must_use]
    pub fn new(modulus: &BigUint) -> Self {
        assert!(modulus.is_odd(), "Montgomery modulus must be odd");
        let n: Vec<u64> = modulus.limbs().to_vec();
        // -n^{-1} mod 2^64 via Newton iteration.
        let n0 = n[0];
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();
        // R^2 mod n with R = 2^{64·len}.
        let r2 = BigUint::one().shl(128 * n.len()).rem(modulus);
        MontCtx { n, n0_inv, r2, modulus: modulus.clone() }
    }

    /// The modulus.
    #[must_use]
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    fn len(&self) -> usize {
        self.n.len()
    }

    /// CIOS Montgomery product: `a·b·R⁻¹ mod n`, on fixed-width limb
    /// vectors of length `len()`.
    fn mont_mul_raw(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let len = self.len();
        let mut t = vec![0u64; len + 2];
        for &ai in a.iter().take(len) {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..len {
                let v = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = v as u64;
                carry = v >> 64;
            }
            let v = t[len] as u128 + carry;
            t[len] = v as u64;
            t[len + 1] = (v >> 64) as u64;
            // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let v = t[0] as u128 + m as u128 * self.n[0] as u128;
            let mut carry = v >> 64;
            for j in 1..len {
                let v = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = v as u64;
                carry = v >> 64;
            }
            let v = t[len] as u128 + carry;
            t[len - 1] = v as u64;
            t[len] = t[len + 1].wrapping_add((v >> 64) as u64);
            t[len + 1] = 0;
        }
        // Conditional subtraction of n.
        let mut out = t[..len].to_vec();
        let overflow = t[len] != 0;
        if overflow || ge(&out, &self.n) {
            sub_in_place(&mut out, &self.n);
        }
        out
    }

    fn to_fixed(&self, x: &BigUint) -> Vec<u64> {
        let mut v = x.limbs().to_vec();
        v.resize(self.len(), 0);
        v
    }

    /// Converts into Montgomery form: `x·R mod n`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    #[must_use]
    pub fn to_mont(&self, x: &BigUint) -> Vec<u64> {
        assert!(x.cmp(&self.modulus) == std::cmp::Ordering::Less, "operand must be reduced");
        self.mont_mul_raw(&self.to_fixed(x), &self.to_fixed(&self.r2))
    }

    /// Converts out of Montgomery form.
    #[must_use]
    pub fn from_mont(&self, x: &[u64]) -> BigUint {
        let one = {
            let mut v = vec![0u64; self.len()];
            v[0] = 1;
            v
        };
        BigUint::from_limbs(self.mont_mul_raw(x, &one))
    }

    /// `a·b mod n` on ordinary representatives.
    #[must_use]
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul_raw(&am, &bm))
    }

    /// `base^exp mod n` (left-to-right square-and-multiply in Montgomery
    /// form).
    #[must_use]
    pub fn pow_mod(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        let base_m = self.to_mont(&base.rem(&self.modulus));
        let mut acc = self.to_mont(&BigUint::one());
        for i in (0..exp.bits()).rev() {
            acc = self.mont_mul_raw(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul_raw(&acc, &base_m);
            }
        }
        self.from_mont(&acc)
    }
}

fn ge(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0i128;
    for i in 0..a.len() {
        let mut d = a[i] as i128 - b[i] as i128 - borrow;
        if d < 0 {
            d += 1i128 << 64;
            borrow = 1;
        } else {
            borrow = 0;
        }
        a[i] = d as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn small_modulus_known_values() {
        let m = BigUint::from_u64(97);
        let ctx = MontCtx::new(&m);
        assert_eq!(ctx.mul_mod(&BigUint::from_u64(10), &BigUint::from_u64(10)).low_u64(), 3);
        assert_eq!(ctx.pow_mod(&BigUint::from_u64(2), &BigUint::from_u64(96)).low_u64(), 1); // Fermat
        assert_eq!(ctx.pow_mod(&BigUint::from_u64(5), &BigUint::zero()).low_u64(), 1);
    }

    #[test]
    fn round_trip_mont_form() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = {
            let mut v = BigUint::random_bits(256, &mut rng);
            if !v.is_odd() {
                v = v.add(&BigUint::one());
            }
            v
        };
        let ctx = MontCtx::new(&m);
        for _ in 0..10 {
            let x = BigUint::random_below(&m, &mut rng);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mul_matches_naive(seed: u64) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut m = BigUint::random_bits(192, &mut rng);
            if !m.is_odd() { m = m.add(&BigUint::one()); }
            let ctx = MontCtx::new(&m);
            let a = BigUint::random_below(&m, &mut rng);
            let b = BigUint::random_below(&m, &mut rng);
            prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul(&b).rem(&m));
        }

        #[test]
        fn pow_matches_repeated_mul(seed: u64, e in 0u64..40) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut m = BigUint::random_bits(128, &mut rng);
            if !m.is_odd() { m = m.add(&BigUint::one()); }
            let ctx = MontCtx::new(&m);
            let base = BigUint::random_below(&m, &mut rng);
            let mut expect = BigUint::one().rem(&m);
            for _ in 0..e {
                expect = expect.mul(&base).rem(&m);
            }
            prop_assert_eq!(ctx.pow_mod(&base, &BigUint::from_u64(e)), expect);
        }

        #[test]
        fn pow_is_homomorphic(seed: u64, e1 in 0u64..1000, e2 in 0u64..1000) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut m = BigUint::random_bits(160, &mut rng);
            if !m.is_odd() { m = m.add(&BigUint::one()); }
            let ctx = MontCtx::new(&m);
            let base = BigUint::random_below(&m, &mut rng);
            let lhs = ctx.pow_mod(&base, &BigUint::from_u64(e1 + e2));
            let rhs = ctx.mul_mod(
                &ctx.pow_mod(&base, &BigUint::from_u64(e1)),
                &ctx.pow_mod(&base, &BigUint::from_u64(e2)),
            );
            prop_assert_eq!(lhs, rhs);
        }
    }
}
