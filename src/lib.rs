//! # ABNN² — secure two-party arbitrary-bitwidth quantized NN predictions
//!
//! Umbrella crate for the ABNN² reproduction (Shen et al., DAC 2022). It
//! re-exports the workspace crates under stable module names so examples and
//! downstream users need a single dependency.
//!
//! The paper's contribution lives in [`core`]; everything else is substrate
//! built from scratch for this reproduction (see `DESIGN.md`).
//!
//! ```
//! use abnn2::math::Ring;
//! let ring = Ring::new(32);
//! assert_eq!(ring.add(ring.mask(), 1), 0);
//! ```

pub use abnn2_baselines as baselines;
pub use abnn2_core as core;
pub use abnn2_crypto as crypto;
pub use abnn2_gc as gc;
pub use abnn2_he as he;
pub use abnn2_math as math;
pub use abnn2_net as net;
pub use abnn2_nn as nn;
pub use abnn2_ot as ot;
pub use abnn2_serve as serve;
