//! Quickstart: train a small model, quantize it to 8 bits, and run one
//! secure prediction — verifying the client's logits match the plaintext
//! fixed-point pipeline exactly.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use abnn2::core::inference::{SecureClient, SecureServer};
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{run_pair, NetworkModel};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::{Network, SyntheticMnist};
use rand::SeedableRng;

fn main() {
    // 1. The server trains a model on its private data.
    println!("[1/4] training a 784-32-10 network on synthetic MNIST…");
    let data = SyntheticMnist::generate(1500, 300, 7);
    let mut net = Network::new(&[784, 32, 10], 1);
    for epoch in 0..4 {
        let loss = net.train_epoch(&data.train, 0.05);
        println!("      epoch {epoch}: loss {loss:.4}");
    }
    println!("      float test accuracy: {:.1}%", 100.0 * net.accuracy(&data.test));

    // 2. Quantize to arbitrary-bitwidth weights — here signed 8-bit,
    //    fragmented (2,2,2,2) for the 1-out-of-4 OTs.
    println!("[2/4] quantizing to 8-bit weights, fragmentation (2,2,2,2)…");
    let config = QuantConfig {
        ring: Ring::new(32),
        frac_bits: 8,
        weight_frac_bits: 4,
        scheme: FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]),
    };
    let quantized = QuantizedNetwork::quantize(&net, config);
    println!("      quantized test accuracy: {:.1}%", 100.0 * quantized.accuracy(&data.test));

    // 3. Secure two-party inference: the client never sees the weights, the
    //    server never sees the input or the result.
    println!("[3/4] running secure inference over a simulated LAN…");
    let sample = data.test[0].clone();
    let input = sample.pixels.clone();
    let server = SecureServer::new(quantized.clone());
    let client = SecureClient::new(server.public_info());
    let (_, logits, report) = run_pair(
        NetworkModel::lan(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            server.run(ch, 1, &mut rng).expect("server protocol failed");
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            client.run(ch, &[input], &mut rng).expect("client protocol failed")
        },
    );
    println!(
        "      done: {:.2} MiB over the wire, {:.2}s simulated",
        report.total_mib(),
        report.simulated_time().as_secs_f64()
    );

    // 4. The secure result equals the plaintext fixed-point result exactly.
    println!("[4/4] verifying against the plaintext pipeline…");
    let plain = quantized.forward(&sample.pixels);
    let secure = &logits[0];
    assert_eq!(plain, *secure, "secure and plaintext logits must be identical");
    let predicted = abnn2::nn::model::argmax(secure);
    println!(
        "      predicted class {predicted} (true label {}), logits match exactly ✓",
        sample.label
    );
}
