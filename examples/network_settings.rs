//! Protocol behaviour across network conditions, and the optimized-ReLU
//! trade-off: how LAN/WAN latency and bandwidth shift the bottleneck
//! between the OT-heavy offline phase and the GC-heavy online phase.
//!
//! ```sh
//! cargo run --release --example network_settings
//! ```

use abnn2::core::inference::{SecureClient, SecureServer};
use abnn2::core::relu::ReluVariant;
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{run_pair, NetworkModel};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::{Network, SyntheticMnist};
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    println!("Offline/online split across network settings (784-64-10 model, 4-bit weights)\n");
    let data = SyntheticMnist::generate(400, 50, 17);
    let mut net = Network::new(&[784, 64, 10], 9);
    net.train_epoch(&data.train, 0.05);
    let config = QuantConfig {
        ring: Ring::new(32),
        frac_bits: 8,
        weight_frac_bits: 2,
        scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
    };
    let q = QuantizedNetwork::quantize(&net, config);
    let sample = data.test[0].pixels.clone();

    let settings = [
        ("LAN (10 Gb/s, 0.2 ms)", NetworkModel::lan()),
        ("WAN (24.3 MB/s, 40 ms)", NetworkModel::wan_quotient()),
        ("WAN (9 MB/s, 72 ms)", NetworkModel::wan_secureml()),
    ];
    println!(
        "{:<26} {:>10} {:>12} {:>12} {:>12}",
        "setting", "variant", "offline (s)", "online (s)", "comm (MiB)"
    );
    for (name, model) in settings {
        for variant in [ReluVariant::Oblivious, ReluVariant::Optimized] {
            let server = SecureServer::new(q.clone()).with_variant(variant);
            let client = SecureClient::new(server.public_info()).with_variant(variant);
            let input = sample.clone();
            let (s_mid, c_mid, report) = run_pair(
                model,
                move |ch| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
                    let state = server.offline(ch, 1, &mut rng).expect("offline");
                    let mid = ch.snapshot();
                    server.online(ch, state).expect("online");
                    mid
                },
                move |ch| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
                    let state = client.offline(ch, 1, &mut rng).expect("offline");
                    let mid = ch.snapshot();
                    let _ = client.online(ch, state, &[input], &mut rng).expect("online");
                    mid
                },
            );
            let offline: Duration = s_mid.vtime.max(c_mid.vtime);
            let total = report.simulated_time();
            println!(
                "{:<26} {:>10} {:>12.3} {:>12.3} {:>12.2}",
                name,
                format!("{variant:?}"),
                offline.as_secs_f64(),
                total.saturating_sub(offline).as_secs_f64(),
                report.total_mib(),
            );
        }
    }
    println!("\nThe optimized ReLU trims online GC cost (at the price of leaking pre-activation");
    println!("signs); WAN latency dominates the online phase, bandwidth the offline phase.");
}
