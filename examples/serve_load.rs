//! Load generator for the serving frontend: N concurrent clients fire M
//! requests each at one [`Server`], every logit is checked against the
//! plaintext oracle (`forward_exact`), and the run ends with the server's
//! metrics — admission counters, pool hit rate, per-phase traffic.
//!
//! ```sh
//! cargo run --release --example serve_load -- --clients 8 --requests 2
//! cargo run --release --example serve_load -- --cnn --clients 4 --requests 2
//! cargo run --release --example serve_load -- --clients 4 --requests 1 --metrics-out metrics.prom
//! ```
//!
//! `--metrics-out FILE` additionally writes the final server metrics in
//! the Prometheus text exposition format
//! ([`MetricsSnapshot::render_prometheus`](abnn2::serve::MetricsSnapshot::render_prometheus)),
//! including the per-frame-tag byte counters.
//!
//! `--sessions-per-worker N` lets each event-loop worker multiplex N
//! suspendable sessions at once (default 1); deadlines are widened when
//! multiplexing, since sessions legitimately time-share their worker.
//! `./scripts/check.sh --async-serve-smoke` uses this to drive more
//! concurrent clients than worker threads through the frontend.
//!
//! `--cnn` serves a conv→pool→dense model instead of the MLP — same
//! frontend, same pool, same graph executor underneath.
//!
//! `--transformer` serves a quantized encoder block (secret×secret
//! matmuls, softmax, GELU, layer-norm) through the identical event-loop
//! workers and pool, checked against the same oracle.
//!
//! Exits nonzero on any mismatch or failed request, so CI can use it as a
//! smoke test (`./scripts/check.sh --serve-smoke` / `--cnn-serve-smoke` /
//! `--transformer-smoke`).

use abnn2::core::cnn::PublicCnnInfo;
use abnn2::core::{PublicModelInfo, PublicTransformerInfo};
use abnn2::math::{FragmentScheme, Ring};
use abnn2::nn::quant::{QuantConfig, QuantizedDense, QuantizedNetwork};
use abnn2::nn::transformer::QuantizedTransformer;
use abnn2::nn::{ConvShape, Network, QuantizedCnn, QuantizedConv, SyntheticMnist};
use abnn2::serve::{GovernorConfig, ServeClient, ServeConfig, Server};
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn build_model() -> QuantizedNetwork {
    let data = SyntheticMnist::generate(100, 0, 800);
    let mut net = Network::new(&[784, 10, 8, 10], 800);
    net.train_epoch(&data.train, 0.05);
    QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 4,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]),
        },
    )
}

/// A conv→pool→dense model in the paper's CNN shape, scaled down so the
/// smoke test stays fast: 1×8×8 input, conv 2@3×3 → 2×6×6, pool 2 →
/// 2×3×3 = 18, dense 18→8→10.
fn build_cnn() -> QuantizedCnn {
    let mut rng = rand::rngs::StdRng::seed_from_u64(802);
    let scheme = FragmentScheme::signed_bit_fields(&[2, 2]);
    let (lo, hi) = scheme.weight_range();
    let in_shape = ConvShape { channels: 1, height: 8, width: 8 };
    let conv = QuantizedConv {
        out_channels: 2,
        in_shape,
        kh: 3,
        kw: 3,
        stride: 1,
        weights: (0..2 * 9).map(|_| rng.gen_range(lo..=hi)).collect(),
        bias: vec![5, 3],
    };
    let mk_dense = |out_dim: usize, in_dim: usize, rng: &mut rand::rngs::StdRng| QuantizedDense {
        out_dim,
        in_dim,
        weights: (0..out_dim * in_dim).map(|_| rng.gen_range(lo..=hi)).collect(),
        bias: (0..out_dim as u64).collect(),
    };
    let d1 = mk_dense(8, 18, &mut rng);
    let d2 = mk_dense(10, 8, &mut rng);
    QuantizedCnn {
        config: QuantConfig { ring: Ring::new(32), frac_bits: 6, weight_frac_bits: 3, scheme },
        conv,
        pool_window: 2,
        dense: vec![d1, d2],
    }
}

struct Args {
    clients: usize,
    requests: usize,
    cnn: bool,
    transformer: bool,
    metrics_out: Option<PathBuf>,
    sessions_per_worker: usize,
    governor: bool,
    inject_panic: Option<u64>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        clients: 8,
        requests: 2,
        cnn: false,
        transformer: false,
        metrics_out: None,
        sessions_per_worker: 1,
        governor: false,
        inject_panic: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |name: &str| {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} requires a positive integer"))
        };
        match arg.as_str() {
            "--clients" => parsed.clients = grab("--clients"),
            "--requests" => parsed.requests = grab("--requests"),
            "--sessions-per-worker" => {
                parsed.sessions_per_worker = grab("--sessions-per-worker");
            }
            "--cnn" => parsed.cnn = true,
            "--transformer" => parsed.transformer = true,
            "--governor" => parsed.governor = true,
            "--inject-panic" => parsed.inject_panic = Some(grab("--inject-panic") as u64),
            "--metrics-out" => {
                parsed.metrics_out =
                    Some(args.next().expect("--metrics-out requires a file path").into());
            }
            other => panic!(
                "unknown argument: {other} \
                 (use [--cnn | --transformer] --clients N --requests M \
                 [--sessions-per-worker K] [--governor] [--inject-panic ORDINAL] \
                 [--metrics-out FILE])"
            ),
        }
    }
    assert!(
        parsed.clients > 0 && parsed.requests > 0 && parsed.sessions_per_worker > 0,
        "need at least one client, one request, and one session per worker"
    );
    parsed
}

/// Governor budgets for the run. `--governor` tightens every limit well
/// below the defaults (while staying above what an honest multiplexed
/// load needs); `--inject-panic N` kills the Nth admitted session at the
/// top of its first online sweep, which a clean run must absorb via
/// quarantine + client retry — zero worker deaths either way.
fn governor_for(args: &Args) -> GovernorConfig {
    let mut g = if args.governor {
        GovernorConfig {
            idle_timeout: Some(Duration::from_secs(30)),
            max_outbound_bytes: Some(8 * 1024 * 1024),
            inbound_quota: true,
            ..GovernorConfig::default()
        }
    } else {
        GovernorConfig::default()
    };
    g.inject_panic_session = args.inject_panic;
    g
}

/// Deadlines for the run: the LAN defaults when every worker runs one
/// session at a time, widened when sessions multiplex — a session can
/// legitimately wait far longer than a LAN round trip for its worker's
/// attention while other sessions time-share the event loop.
fn deadlines_for(sessions_per_worker: usize) -> abnn2::core::SessionDeadlines {
    if sessions_per_worker > 1 {
        abnn2::core::SessionDeadlines::uniform(Duration::from_secs(120))
    } else {
        abnn2::core::SessionDeadlines::lan()
    }
}

/// Waits for the workers' session bookkeeping to settle, prints the
/// server's metrics (optionally also dumping the Prometheus exposition to
/// `metrics_out`), and asserts a clean run.
fn report_metrics(
    server: &Server,
    total: usize,
    n_clients: usize,
    n_requests: usize,
    metrics_out: Option<&Path>,
) {
    let settle = Instant::now();
    while server.metrics().completed < (total as u64) && settle.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(2));
    }
    let m = server.metrics();
    println!("\nserver metrics:");
    println!(
        "  accepted {} | rejected {} | completed {} | failed {}",
        m.accepted, m.rejected, m.completed, m.failed
    );
    println!(
        "  governor: evicted {} | panicked {} | worker respawns {}",
        m.evicted, m.panicked, m.worker_respawns
    );
    println!(
        "  pool: produced {} | hits {} | misses {} | ready {}",
        m.pool.produced, m.pool.hits, m.pool.misses, m.pool.ready
    );
    println!("  per-phase traffic (server side):");
    for (name, s) in &m.phases {
        println!(
            "    {name:<16} {:>10} B sent {:>10} B recv {:>6} msgs",
            s.bytes_sent,
            s.bytes_received,
            s.messages_sent + s.messages_received
        );
    }
    println!("  per-frame-tag traffic (server side, tag byte excluded):");
    for (tag, s) in &m.tags {
        println!(
            "    0x{tag:02x} {:<24} {:>10} B sent {:>10} B recv {:>6} frames",
            abnn2::net::wire::tags::name(*tag),
            s.bytes_sent,
            s.bytes_received,
            s.messages_sent + s.messages_received
        );
    }

    if let Some(path) = metrics_out {
        std::fs::write(path, m.render_prometheus()).expect("write --metrics-out file");
        println!("  wrote Prometheus metrics to {}", path.display());
    }

    // Clean load fails no session; with an injected panic, exactly the
    // quarantined sessions fail — never a neighbor, never a worker.
    assert_eq!(m.failed, m.panicked, "only quarantined sessions may fail under clean load");
    assert_eq!(m.evicted, 0, "no honest session may trip a governor budget");
    assert_eq!(m.worker_respawns, 0, "a session panic must never cost a worker");
    assert_eq!(total, n_clients * n_requests);
    println!("\nserve load test passed.");
}

/// Drives `n_clients × n_requests` MLP requests and checks every logit.
fn run_mlp(args: &Args, metrics_out: Option<&Path>) {
    let (n_clients, n_requests, spw) = (args.clients, args.requests, args.sessions_per_worker);
    let q = build_model();
    let info = PublicModelInfo::from(&q);
    let codec = q.config.activation_codec();

    let deadlines = deadlines_for(spw);
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 2 * n_clients.max(4),
        sessions_per_worker: spw,
        pool_depth: n_clients.min(8),
        deadlines,
        governor: governor_for(args),
        ..ServeConfig::default()
    };
    let server = Server::start(q.clone(), "127.0.0.1:0", config).expect("start server");
    let addr = server.addr();
    println!(
        "serving MLP on {addr} with 4 workers x {spw} sessions, pool depth {}",
        n_clients.min(8)
    );

    // Give the pool a head start so at least the first wave runs warm.
    let warmed = server.warm_up(1, n_clients.min(8), Duration::from_secs(30));
    println!("pool warm: {warmed}");

    let data = SyntheticMnist::generate(n_clients * n_requests, 0, 801);
    let started = Instant::now();
    let per_client: Vec<(usize, usize, u32)> = std::thread::scope(|scope| {
        (0..n_clients)
            .map(|c| {
                let client = ServeClient::new(info.clone()).with_deadlines(deadlines);
                let q = &q;
                let codec = &codec;
                let samples = &data.train;
                scope.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(900 + c as u64);
                    let mut exact = 0usize;
                    let mut warm = 0usize;
                    let mut attempts = 0u32;
                    for r in 0..n_requests {
                        let sample = &samples[c * n_requests + r];
                        let input = codec.encode_vec(&sample.pixels);
                        let expected = q.forward_exact(&input);
                        let (y, report) = client
                            .run(addr, std::slice::from_ref(&input), &mut rng)
                            .expect("request failed");
                        assert_eq!(
                            y.col(0),
                            expected,
                            "client {c} request {r}: served logits diverge from forward_exact"
                        );
                        exact += 1;
                        warm += usize::from(report.warm);
                        attempts += report.attempts;
                    }
                    (exact, warm, attempts)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    let total: usize = per_client.iter().map(|(e, _, _)| e).sum();
    let warm: usize = per_client.iter().map(|(_, w, _)| w).sum();
    println!(
        "\n{total} requests from {n_clients} clients in {elapsed:?} — all bit-exact, {warm} warm"
    );
    report_metrics(&server, total, n_clients, n_requests, metrics_out);
}

/// Drives `n_clients × n_requests` CNN requests through the same frontend
/// and checks every logit — exercising graph-keyed pool bundles and the
/// unified executor over a spatial topology.
fn run_cnn(args: &Args, metrics_out: Option<&Path>) {
    let (n_clients, n_requests, spw) = (args.clients, args.requests, args.sessions_per_worker);
    let cnn = build_cnn();
    let ring = cnn.config.ring;
    let info = PublicCnnInfo::from(&cnn);

    let deadlines = deadlines_for(spw);
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 2 * n_clients.max(4),
        sessions_per_worker: spw,
        pool_depth: n_clients.min(8),
        deadlines,
        governor: governor_for(args),
        ..ServeConfig::default()
    };
    let server = Server::start(cnn.clone(), "127.0.0.1:0", config).expect("start server");
    let addr = server.addr();
    println!(
        "serving CNN on {addr} with 4 workers x {spw} sessions, pool depth {}",
        n_clients.min(8)
    );

    let warmed = server.warm_up(1, n_clients.min(8), Duration::from_secs(30));
    println!("pool warm: {warmed}");

    let started = Instant::now();
    let per_client: Vec<(usize, usize, u32)> = std::thread::scope(|scope| {
        (0..n_clients)
            .map(|c| {
                let client = ServeClient::for_model(info.clone()).with_deadlines(deadlines);
                let cnn = &cnn;
                scope.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(950 + c as u64);
                    let mut exact = 0usize;
                    let mut warm = 0usize;
                    let mut attempts = 0u32;
                    for r in 0..n_requests {
                        let image: Vec<u64> = (0..cnn.conv.in_shape.len())
                            .map(|_| ring.reduce(rng.gen_range(0..1u64 << cnn.config.frac_bits)))
                            .collect();
                        let expected = cnn.forward_exact(&image);
                        let (y, report) = client
                            .run(addr, std::slice::from_ref(&image), &mut rng)
                            .expect("request failed");
                        assert_eq!(
                            y.col(0),
                            expected,
                            "client {c} request {r}: served CNN logits diverge from forward_exact"
                        );
                        exact += 1;
                        warm += usize::from(report.warm);
                        attempts += report.attempts;
                    }
                    (exact, warm, attempts)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    let total: usize = per_client.iter().map(|(e, _, _)| e).sum();
    let warm: usize = per_client.iter().map(|(_, w, _)| w).sum();
    println!(
        "\n{total} CNN requests from {n_clients} clients in {elapsed:?} — all bit-exact, {warm} warm"
    );
    report_metrics(&server, total, n_clients, n_requests, metrics_out);
}

/// A quantized encoder block sized for the smoke test: 4 tokens of width
/// 4, feed-forward 8, 3 classes — both secret×secret matmuls plus
/// softmax, GELU and two layer-norms on every request's execution path.
fn build_transformer() -> QuantizedTransformer {
    let config = QuantConfig {
        ring: Ring::new(16),
        frac_bits: 6,
        weight_frac_bits: 2,
        scheme: FragmentScheme::optimal(4),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(803);
    QuantizedTransformer::random(4, 4, 8, 3, config, &mut rng).expect("valid transformer")
}

/// Drives `n_clients × n_requests` transformer requests through the same
/// event-loop frontend — matrix-triple bundles from the pool for warm
/// sessions, interactive Gilboa generation for cold ones.
fn run_transformer(args: &Args, metrics_out: Option<&Path>) {
    let (n_clients, n_requests, spw) = (args.clients, args.requests, args.sessions_per_worker);
    let model = build_transformer();
    let ring = model.config.ring;
    let info = PublicTransformerInfo::from(&model);

    let deadlines = deadlines_for(spw);
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 2 * n_clients.max(4),
        sessions_per_worker: spw,
        pool_depth: n_clients.min(8),
        deadlines,
        governor: governor_for(args),
        ..ServeConfig::default()
    };
    let server = Server::start(model.clone(), "127.0.0.1:0", config).expect("start server");
    let addr = server.addr();
    println!(
        "serving transformer on {addr} with 4 workers x {spw} sessions, pool depth {}",
        n_clients.min(8)
    );

    let warmed = server.warm_up(1, n_clients.min(8), Duration::from_secs(30));
    println!("pool warm: {warmed}");

    let started = Instant::now();
    let per_client: Vec<(usize, usize, u32)> = std::thread::scope(|scope| {
        (0..n_clients)
            .map(|c| {
                let client = ServeClient::for_model(info.clone()).with_deadlines(deadlines);
                let model = &model;
                scope.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(970 + c as u64);
                    let mut exact = 0usize;
                    let mut warm = 0usize;
                    let mut attempts = 0u32;
                    for r in 0..n_requests {
                        let tokens: Vec<u64> = (0..model.seq * model.d)
                            .map(|_| ring.reduce(rng.gen_range(-64i64..64) as u64))
                            .collect();
                        let expected = model.forward_exact(&tokens);
                        let (y, report) = client
                            .run(addr, std::slice::from_ref(&tokens), &mut rng)
                            .expect("request failed");
                        assert_eq!(
                            y.col(0),
                            expected,
                            "client {c} request {r}: served transformer logits diverge \
                             from forward_exact"
                        );
                        exact += 1;
                        warm += usize::from(report.warm);
                        attempts += report.attempts;
                    }
                    (exact, warm, attempts)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    let total: usize = per_client.iter().map(|(e, _, _)| e).sum();
    let warm: usize = per_client.iter().map(|(_, w, _)| w).sum();
    println!(
        "\n{total} transformer requests from {n_clients} clients in {elapsed:?} — \
         all bit-exact, {warm} warm"
    );
    report_metrics(&server, total, n_clients, n_requests, metrics_out);
}

fn main() {
    let args = parse_args();
    assert!(!(args.cnn && args.transformer), "--cnn and --transformer are mutually exclusive");
    if args.transformer {
        run_transformer(&args, args.metrics_out.as_deref());
    } else if args.cnn {
        run_cnn(&args, args.metrics_out.as_deref());
    } else {
        run_mlp(&args, args.metrics_out.as_deref());
    }
}
