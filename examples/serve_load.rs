//! Load generator for the serving frontend: N concurrent clients fire M
//! requests each at one [`Server`], every logit is checked against
//! [`QuantizedNetwork::forward_exact`], and the run ends with the server's
//! metrics — admission counters, pool hit rate, per-phase traffic.
//!
//! ```sh
//! cargo run --release --example serve_load -- --clients 8 --requests 2
//! ```
//!
//! Exits nonzero on any mismatch or failed request, so CI can use it as a
//! smoke test (`./scripts/check.sh --serve-smoke`).

use abnn2::core::PublicModelInfo;
use abnn2::math::{FragmentScheme, Ring};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::{Network, SyntheticMnist};
use abnn2::serve::{ServeClient, ServeConfig, Server};
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn build_model() -> QuantizedNetwork {
    let data = SyntheticMnist::generate(100, 0, 800);
    let mut net = Network::new(&[784, 10, 8, 10], 800);
    net.train_epoch(&data.train, 0.05);
    QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 4,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]),
        },
    )
}

fn parse_args() -> (usize, usize) {
    let mut clients = 8usize;
    let mut requests = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |name: &str| {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} requires a positive integer"))
        };
        match arg.as_str() {
            "--clients" => clients = grab("--clients"),
            "--requests" => requests = grab("--requests"),
            other => panic!("unknown argument: {other} (use --clients N --requests M)"),
        }
    }
    assert!(clients > 0 && requests > 0, "need at least one client and one request");
    (clients, requests)
}

fn main() {
    let (n_clients, n_requests) = parse_args();
    let q = build_model();
    let info = PublicModelInfo::from(&q);
    let codec = q.config.activation_codec();

    let config = ServeConfig {
        workers: 4,
        queue_capacity: 2 * n_clients.max(4),
        pool_depth: n_clients.min(8),
        ..ServeConfig::default()
    };
    let server = Server::start(q.clone(), "127.0.0.1:0", config).expect("start server");
    let addr = server.addr();
    println!("serving on {addr} with 4 workers, pool depth {}", n_clients.min(8));

    // Give the pool a head start so at least the first wave runs warm.
    let warmed = server.warm_up(1, n_clients.min(8), Duration::from_secs(30));
    println!("pool warm: {warmed}");

    let data = SyntheticMnist::generate(n_clients * n_requests, 0, 801);
    let started = Instant::now();
    let per_client: Vec<(usize, usize, u32)> = std::thread::scope(|scope| {
        (0..n_clients)
            .map(|c| {
                let client = ServeClient::new(info.clone());
                let q = &q;
                let codec = &codec;
                let samples = &data.train;
                scope.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(900 + c as u64);
                    let mut exact = 0usize;
                    let mut warm = 0usize;
                    let mut attempts = 0u32;
                    for r in 0..n_requests {
                        let sample = &samples[c * n_requests + r];
                        let input = codec.encode_vec(&sample.pixels);
                        let expected = q.forward_exact(&input);
                        let (y, report) = client
                            .run(addr, std::slice::from_ref(&input), &mut rng)
                            .expect("request failed");
                        assert_eq!(
                            y.col(0),
                            expected,
                            "client {c} request {r}: served logits diverge from forward_exact"
                        );
                        exact += 1;
                        warm += usize::from(report.warm);
                        attempts += report.attempts;
                    }
                    (exact, warm, attempts)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    let total: usize = per_client.iter().map(|(e, _, _)| e).sum();
    let warm: usize = per_client.iter().map(|(_, w, _)| w).sum();
    println!(
        "\n{total} requests from {n_clients} clients in {elapsed:?} — all bit-exact, {warm} warm"
    );

    // Clients return on their last recv; give the workers a beat to finish
    // their session bookkeeping before snapshotting.
    let settle = Instant::now();
    while server.metrics().completed < (total as u64) && settle.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(2));
    }
    let m = server.metrics();
    println!("\nserver metrics:");
    println!(
        "  accepted {} | rejected {} | completed {} | failed {}",
        m.accepted, m.rejected, m.completed, m.failed
    );
    println!(
        "  pool: produced {} | hits {} | misses {} | ready {}",
        m.pool.produced, m.pool.hits, m.pool.misses, m.pool.ready
    );
    println!("  per-phase traffic (server side):");
    for (name, s) in &m.phases {
        println!(
            "    {name:<10} {:>10} B sent {:>10} B recv {:>6} msgs",
            s.bytes_sent,
            s.bytes_received,
            s.messages_sent + s.messages_received
        );
    }

    assert_eq!(m.failed, 0, "no session may fail under clean load");
    assert_eq!(total, n_clients * n_requests);
    println!("\nserve load test passed.");
}
