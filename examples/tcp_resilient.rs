//! Reconnect-and-resume over real TCP: a connection dies mid-online-phase
//! and the prediction still completes, bit-identical to an uninterrupted
//! run.
//!
//! One process, two threads, one localhost socket per connection attempt:
//!
//! * the **server** thread serves a single prediction job through
//!   [`ResilientServer`]. On the first attempt it arms a [`Fault`] that
//!   cuts the connection two messages into the online phase — after the
//!   expensive offline triplet generation has completed and been
//!   checkpointed.
//! * the **client** (main thread) drives [`ResilientClient`]: when the cut
//!   hits, it backs off, reconnects, re-handshakes presenting its
//!   session-resume token, redoes only the cheap base-OT session setup,
//!   and replays the online phase against the checkpointed triplets.
//!
//! The final logits are asserted equal to
//! [`QuantizedNetwork::forward_exact`] — the resumed run is
//! indistinguishable, output-wise, from a run that never failed.
//!
//! ```sh
//! cargo run --release --example tcp_resilient
//! ```

use abnn2::core::inference::{SecureClient, SecureServer};
use abnn2::core::resilient::{ResilientClient, ResilientServer};
use abnn2::core::SessionDeadlines;
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{Fault, FaultyTransport, RetryPolicy, TcpTransport, TransportError};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::{Network, SyntheticMnist};
use rand::SeedableRng;
use std::net::TcpListener;
use std::time::Duration;

fn build_model() -> QuantizedNetwork {
    let data = SyntheticMnist::generate(100, 0, 700);
    let mut net = Network::new(&[784, 10, 8, 10], 700);
    net.train_epoch(&data.train, 0.05);
    QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 4,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]),
        },
    )
}

fn main() {
    let q = build_model();
    let sample = &SyntheticMnist::generate(1, 0, 701).train[0];
    let input = q.config.activation_codec().encode_vec(&sample.pixels);
    let expected = q.forward_exact(&input);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    println!("listening on {addr}");

    let deadlines = SessionDeadlines::uniform(Duration::from_secs(10));
    let policy = RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_secs(1),
        jitter_seed: 7,
    };

    let server = ResilientServer::new(SecureServer::new(q.clone()))
        .with_policy(policy)
        .with_deadlines(deadlines);
    let info = SecureServer::new(q.clone()).public_info();

    let server_thread = std::thread::spawn(move || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        server.serve_one_with(
            |attempt| {
                let (stream, peer) = listener.accept().map_err(|_| TransportError::Closed)?;
                println!("[server] attempt {attempt}: accepted {peer}");
                Ok(FaultyTransport::new(TcpTransport::from_stream(stream)?, Fault::None))
            },
            |ch, attempt| {
                if attempt == 0 {
                    // Sabotage the first attempt: kill the connection two
                    // messages into the online phase, *after* the offline
                    // triplets were generated and checkpointed.
                    println!("[server] attempt 0: arming mid-online connection cut");
                    ch.set_fault(Fault::CutAfterMessages(ch.sends() + 2));
                }
            },
            &mut rng,
        )
    });

    let client =
        ResilientClient::new(SecureClient::new(info)).with_policy(policy).with_deadlines(deadlines);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let (y, report) = client
        .run_raw(
            |attempt| {
                println!("[client] attempt {attempt}: connecting");
                TcpTransport::connect(addr)
            },
            std::slice::from_ref(&input),
            &mut rng,
        )
        .expect("resilient client failed");

    let server_report = server_thread.join().expect("server thread").expect("server failed");

    println!("[client] attempts: {}, resumed: {}", report.attempts, report.resumed);
    println!("[server] attempts: {}, resumed: {}", server_report.attempts, server_report.resumed);
    println!("[client] logits:        {:?}", y.col(0));
    println!("[client] forward_exact: {expected:?}");

    assert!(report.attempts >= 2, "the cut must have forced a reconnect");
    assert!(report.resumed, "the client must have resumed from its checkpoint");
    assert!(server_report.resumed, "the server must have accepted the resume token");
    assert_eq!(y.col(0), expected, "resumed logits must equal forward_exact bit-for-bit");
    println!("reconnect-and-resume verified: logits bit-identical after mid-online cut ✓");
}
