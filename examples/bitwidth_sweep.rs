//! Arbitrary-bitwidth adaptability: sweep η from 1 to 8 bits with the
//! communication-optimal fragmentation for each, measuring offline triplet
//! cost and quantized accuracy — the accuracy/efficiency trade-off that
//! motivates *arbitrary* (not just binary/ternary) bitwidth support.
//!
//! ```sh
//! cargo run --release --example bitwidth_sweep
//! ```

use abnn2::core::matmul::{triplet_client, triplet_server, TripletMode};
use abnn2::math::{FragmentScheme, Matrix, Ring};
use abnn2::net::{run_pair, NetworkModel};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::{Network, SyntheticMnist};
use abnn2::ot::{FragmentChooser, FragmentSender, OfflineMode};
use rand::SeedableRng;

fn scheme_for(eta: u32) -> FragmentScheme {
    match eta {
        1 => FragmentScheme::binary(),
        2 => FragmentScheme::ternary(),
        _ => {
            // Signed bit-fields with 2-bit fragments (the Table-2 optimum).
            let gamma = eta.div_ceil(2);
            let mut widths = vec![2u32; gamma as usize];
            let last = eta - 2 * (gamma - 1);
            *widths.last_mut().expect("gamma >= 1") = last;
            FragmentScheme::signed_bit_fields(&widths)
        }
    }
}

fn main() {
    println!("Bitwidth sweep: accuracy vs offline triplet cost (128×784 layer, batch 1)\n");
    let data = SyntheticMnist::generate(800, 200, 13);
    let mut net = Network::new(&[784, 32, 10], 3);
    for _ in 0..3 {
        net.train_epoch(&data.train, 0.05);
    }
    let float_acc = net.accuracy(&data.test);
    println!("float accuracy: {:.1}%\n", 100.0 * float_acc);
    println!(
        "{:>4} {:>12} {:>10} {:>12} {:>12}",
        "eta", "scheme", "acc %", "time (s)", "comm (MiB)"
    );

    let ring = Ring::new(32);
    for eta in 1..=8u32 {
        let scheme = scheme_for(eta);
        let fw = if eta <= 2 { 0 } else { (eta - 1).min(4) };
        let config =
            QuantConfig { ring, frac_bits: 8, weight_frac_bits: fw, scheme: scheme.clone() };
        let q = QuantizedNetwork::quantize(&net, config);
        let acc = q.accuracy(&data.test);

        // Offline cost of the paper's first layer at this bitwidth.
        let (m, n) = (128usize, 784usize);
        let weights = {
            use rand::Rng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(eta as u64);
            let (lo, hi) = scheme.weight_range();
            (0..m * n).map(|_| rng.gen_range(lo..=hi)).collect::<Vec<i64>>()
        };
        let (s1, s2) = (scheme.clone(), scheme.clone());
        let ((), (), report) = run_pair(
            NetworkModel::lan(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(31);
                let mut kk =
                    FragmentChooser::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                let _ = triplet_server(
                    ch,
                    &mut kk,
                    &weights,
                    m,
                    n,
                    1,
                    &s1,
                    ring,
                    TripletMode::OneBatch,
                )
                .expect("server");
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(32);
                let mut kk = FragmentSender::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                let r = Matrix::random(n, 1, &ring, &mut rng);
                let _ =
                    triplet_client(ch, &mut kk, &r, m, &s2, ring, TripletMode::OneBatch, &mut rng)
                        .expect("client");
            },
        );
        println!(
            "{:>4} {:>12} {:>10.1} {:>12.2} {:>12.2}",
            eta,
            scheme.label(),
            100.0 * acc,
            report.simulated_time().as_secs_f64(),
            report.total_mib(),
        );
    }
    println!("\nAccuracy saturates well below full precision while cost keeps falling —");
    println!("the reason ABNN² supports *arbitrary* bitwidth instead of fixing binary/ternary.");
}
