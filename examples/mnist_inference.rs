//! The paper's headline workload: the Fig-4 network (784→128→128→10) served
//! securely over LAN and WAN, comparing weight bitwidths — the scenario of
//! a diagnostic model served to a hospital that may not reveal patient
//! data, while the provider may not reveal the model.
//!
//! ```sh
//! cargo run --release --example mnist_inference
//! ```

use abnn2::core::inference::{SecureClient, SecureServer};
use abnn2::core::relu::ReluVariant;
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{run_pair, NetworkModel};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::{model::paper_network_dims, Network, SyntheticMnist};
use rand::SeedableRng;

fn main() {
    println!("Fig-4 network secure inference across weight bitwidths");
    println!("(training kept short; the protocol cost is what this example shows)\n");

    let data = SyntheticMnist::generate(800, 200, 11);
    let mut net = Network::new(&paper_network_dims(), 5);
    for _ in 0..2 {
        net.train_epoch(&data.train, 0.03);
    }
    println!("float test accuracy: {:.1}%\n", 100.0 * net.accuracy(&data.test));

    let schemes: [(&str, FragmentScheme, u32); 3] = [
        ("8-bit (2,2,2,2)", FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 4),
        ("4-bit (2,2)", FragmentScheme::signed_bit_fields(&[2, 2]), 2),
        ("ternary", FragmentScheme::ternary(), 0),
    ];

    let sample = data.test[0].clone();
    for (name, scheme, fw) in schemes {
        let config =
            QuantConfig { ring: Ring::new(32), frac_bits: 8, weight_frac_bits: fw, scheme };
        let q = QuantizedNetwork::quantize(&net, config);
        let acc = q.accuracy(&data.test[..50.min(data.test.len())]);
        for (setting, model) in
            [("LAN", NetworkModel::lan()), ("WAN 24.3MB/s 40ms", NetworkModel::wan_quotient())]
        {
            let server = SecureServer::new(q.clone()).with_variant(ReluVariant::Oblivious);
            let client = SecureClient::new(server.public_info());
            let input = sample.pixels.clone();
            let (_, logits, report) = run_pair(
                model,
                move |ch| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
                    server.run(ch, 1, &mut rng).expect("server");
                },
                move |ch| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(22);
                    client.run(ch, &[input], &mut rng).expect("client")
                },
            );
            let predicted = abnn2::nn::model::argmax(&logits[0]);
            println!(
                "{name:>16} | {setting:>17} | {:6.2}s simulated | {:7.2} MiB | class {predicted} | quant. acc {:.0}%",
                report.simulated_time().as_secs_f64(),
                report.total_mib(),
                100.0 * acc,
            );
        }
    }
    println!("\nSmaller bitwidth ⇒ fewer/cheaper OTs ⇒ less traffic and time, as in the paper.");
}
