//! Extension demo: secure inference of a small **convolutional** network —
//! conv → ReLU → max-pool → dense — built entirely from the paper's
//! machinery: the conv layer reduces to the §4.1 OT matmul through im2col
//! (applied locally to shares) and max-pooling runs as a garbled circuit
//! like the ReLU layers. Also shows the multi-core triplet option (the
//! paper's stated future work).
//!
//! ```sh
//! cargo run --release --example cnn_inference
//! ```

use abnn2::core::cnn::{CnnClient, CnnServer};
use abnn2::math::{FixedPoint, FragmentScheme, Ring};
use abnn2::net::{run_pair, NetworkModel};
use abnn2::nn::conv::{ConvShape, QuantizedCnn, QuantizedConv};
use abnn2::nn::quant::{QuantConfig, QuantizedDense};
use rand::{Rng, SeedableRng};

fn main() {
    println!("Secure CNN: 1×12×12 input → conv 4@3×3 → ReLU → pool 2×2 → dense 100→32→10\n");
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let scheme = FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]);
    let (lo, hi) = scheme.weight_range();
    let config = QuantConfig { ring: Ring::new(32), frac_bits: 8, weight_frac_bits: 4, scheme };

    let in_shape = ConvShape { channels: 1, height: 12, width: 12 };
    let conv = QuantizedConv {
        out_channels: 4,
        in_shape,
        kh: 3,
        kw: 3,
        stride: 1,
        weights: (0..4 * 9).map(|_| rng.gen_range(lo..=hi)).collect(),
        bias: vec![0; 4],
    };
    // conv out 4×10×10 → pool 2 → 4×5×5 = 100.
    let mk_dense = |out_dim: usize, in_dim: usize, rng: &mut rand::rngs::StdRng| QuantizedDense {
        out_dim,
        in_dim,
        weights: (0..out_dim * in_dim).map(|_| rng.gen_range(lo..=hi)).collect(),
        bias: vec![0; out_dim],
    };
    let dense = vec![mk_dense(32, 100, &mut rng), mk_dense(10, 32, &mut rng)];
    let cnn = QuantizedCnn { config, conv, pool_window: 2, dense };

    // A fixed-point "image" in [0, 1).
    let codec = FixedPoint::new(cnn.config.ring, cnn.config.frac_bits);
    let image: Vec<u64> =
        (0..in_shape.len()).map(|i| codec.encode((i as f64 * 0.37).fract())).collect();
    let expect = cnn.forward_exact(&image);

    for threads in [1usize, 4] {
        let server = CnnServer::new(cnn.clone()).with_threads(threads);
        let client = CnnClient::new(server.public_info()).with_threads(threads);
        let image2 = image.clone();
        let (srv, got, report) = run_pair(
            NetworkModel::lan(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(100);
                server.run(ch, &mut rng)
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(101);
                client.run(ch, &image2, &mut rng).expect("client")
            },
        );
        srv.expect("server");
        assert_eq!(got, expect, "secure CNN output must match the plaintext oracle");
        println!(
            "threads = {threads}: {:.2}s simulated, {:.2} MiB — output matches plaintext exactly ✓",
            report.simulated_time().as_secs_f64(),
            report.total_mib()
        );
    }

    let out = FixedPoint::new(cnn.config.ring, cnn.config.frac_bits + cnn.config.weight_frac_bits);
    let logits = out.decode_vec(&expect);
    println!("\nlogits: {:?}", logits.iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>());
    println!("predicted class: {}", abnn2::nn::model::argmax(&logits));
}
