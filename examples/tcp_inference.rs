//! Two-process secure inference over real TCP.
//!
//! Each party runs as its own OS process connected by a localhost socket —
//! the same [`SecureServer`]/[`SecureClient`] code that drives the simulated
//! [`Endpoint`], now over [`TcpTransport`], because every protocol layer is
//! generic over [`Transport`]:
//!
//! ```sh
//! cargo run --release --example tcp_inference                   # both roles
//! cargo run --release --example tcp_inference -- server 7878    # party 0
//! cargo run --release --example tcp_inference -- client 7878    # party 1
//! ```
//!
//! The client verifies two properties:
//!
//! 1. **Bit-exactness** — the logits received over TCP equal
//!    [`QuantizedNetwork::forward_exact`] on the plaintext input, bit for
//!    bit (and equal a simulated in-process run of the same protocol).
//! 2. **Byte parity** — the application bytes counted by the TCP transport
//!    equal the simulated run's count exactly: the paper's "Comm." numbers
//!    are properties of the protocol, not of the wire.

use abnn2::core::inference::{SecureClient, SecureServer};
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{run_pair, NetworkModel, TcpTransport, Transport};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::{Network, SyntheticMnist};
use rand::SeedableRng;
use std::net::TcpListener;
use std::process::{exit, Command};

const MODEL_SEED: u64 = 700;
const DATA_SEED: u64 = 701;

/// Both processes derive the identical model from the shared seed, standing
/// in for the out-of-band model exchange a deployment would do. Training is
/// deterministic, so server and client agree on every weight.
fn build_model() -> QuantizedNetwork {
    let data = SyntheticMnist::generate(100, 0, MODEL_SEED);
    let mut net = Network::new(&[784, 10, 8, 10], MODEL_SEED);
    net.train_epoch(&data.train, 0.05);
    QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 4,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]),
        },
    )
}

/// The client's fixed-point input, identical in every role.
fn build_input(q: &QuantizedNetwork) -> Vec<u64> {
    let sample = &SyntheticMnist::generate(1, 0, DATA_SEED).train[0];
    q.config.activation_codec().encode_vec(&sample.pixels)
}

fn run_server(port: u16) {
    let q = build_model();
    let mut ch = TcpTransport::accept(("127.0.0.1", port)).expect("accept");
    let server = SecureServer::new(q);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    server.run(&mut ch, 1, &mut rng).expect("server protocol failed");
    ch.flush().expect("flush");
    let snap = ch.snapshot();
    println!(
        "[server] done: sent {} B, received {} B over TCP",
        snap.bytes_sent, snap.bytes_received
    );
}

fn run_client(port: u16) {
    let q = build_model();
    let input = build_input(&q);
    let expected = q.forward_exact(&input);

    // Reference run over the simulated endpoint: same model, same input.
    let (sim_logits, sim_bytes) = {
        let server = SecureServer::new(q.clone());
        let client = SecureClient::new(server.public_info());
        let input2 = input.clone();
        let (_, y, report) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(2);
                server.run(ch, 1, &mut rng).expect("sim server");
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(3);
                let state = client.offline(ch, 1, &mut rng).expect("sim offline");
                client.online_raw(ch, state, &[input2], &mut rng).expect("sim online")
            },
        );
        (y.col(0), report.total_bytes())
    };

    // The real thing: the same client code over a socket.
    let mut ch = TcpTransport::connect(("127.0.0.1", port)).expect("connect");
    let client = SecureClient::new(SecureServer::new(q.clone()).public_info());
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let state = client.offline(&mut ch, 1, &mut rng).expect("offline phase failed");
    let y = client.online_raw(&mut ch, state, &[input], &mut rng).expect("online phase failed");
    let tcp_logits = y.col(0);
    let snap = ch.snapshot();
    let tcp_bytes = snap.bytes_sent + snap.bytes_received;

    println!("[client] logits over TCP:       {tcp_logits:?}");
    println!("[client] forward_exact oracle:  {expected:?}");
    assert_eq!(tcp_logits, expected, "TCP logits must equal the plaintext oracle bit-for-bit");
    assert_eq!(sim_logits, expected, "simulated logits must equal the oracle too");
    println!(
        "[client] bytes on the wire: {tcp_bytes} (TCP, payload only) vs {sim_bytes} (simulated)"
    );
    assert_eq!(tcp_bytes, sim_bytes, "application-layer byte counts must be transport-independent");
    println!("[client] bit-exact outputs and byte-count parity verified ✓");
}

/// Orchestrates both roles as separate OS processes.
fn run_both() {
    // Probe a free port, then hand it to both children. The tiny window
    // between dropping the probe listener and the server's bind is fine for
    // an example.
    let port = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr").port()
    };
    let exe = std::env::current_exe().expect("current_exe");
    println!("spawning server and client processes on 127.0.0.1:{port}…");
    let mut server =
        Command::new(&exe).args(["server", &port.to_string()]).spawn().expect("spawn server");
    let mut client =
        Command::new(&exe).args(["client", &port.to_string()]).spawn().expect("spawn client");
    let client_status = client.wait().expect("wait client");
    let server_status = server.wait().expect("wait server");
    assert!(server_status.success(), "server process failed: {server_status}");
    assert!(client_status.success(), "client process failed: {client_status}");
    println!("two-process run complete ✓");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        None => run_both(),
        Some("server") => {
            let port: u16 = args.get(2).map_or(7878, |p| p.parse().expect("port"));
            run_server(port);
        }
        Some("client") => {
            let port: u16 = args.get(2).map_or(7878, |p| p.parse().expect("port"));
            run_client(port);
        }
        Some(other) => {
            eprintln!("unknown role {other:?}; use `server <port>`, `client <port>`, or no args");
            exit(2);
        }
    }
}
