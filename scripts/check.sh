#!/usr/bin/env bash
# Full local CI gate: build, test, formatting, lints. Run from the repo root.
#
#   ./scripts/check.sh [--chaos-seeds N] [--serve-smoke] [--cnn-serve-smoke] \
#                      [--async-serve-smoke] [--wire-fuzz-smoke] [--governor-smoke] \
#                      [--silent-ot-smoke] [--transformer-smoke] [--bench]
#
# --chaos-seeds N widens the seeded chaos suite (tests/chaos.rs) from its
# default of 64 seeds without recompiling.
#
# --serve-smoke additionally drives the serving frontend end to end:
# examples/serve_load.rs starts a server and fires 8 concurrent TCP
# clients at it, checking every logit against forward_exact.
#
# --cnn-serve-smoke does the same with a conv→pool→dense model, proving
# the graph executor serves spatial topologies through the same frontend.
#
# --async-serve-smoke exercises the event-driven session engine: the
# sessions-per-worker scaling test (64 clients multiplexed over 4
# event-loop workers, O(workers) protocol threads), the event-loop chaos
# tests (mid-session cut while the driver is parked -> checkpoint ->
# bit-exact resume; delayed frames), and the load generator with more
# clients than workers so warm-pool sessions time-share the event loops.
#
# --wire-fuzz-smoke runs the typed-wire-layer adversarial suites in
# release mode: frame round-trip/truncation/corruption totality
# (tests/wire_roundtrip.rs), the tag-flip sweep over a live session
# (tests/chaos.rs), and the per-transport malformed-frame contract
# (tests/transport_contract.rs).
#
# --governor-smoke exercises the session governor and worker supervisor:
# the hostile-peer chaos tests (slowloris eviction, never-draining
# reader hitting the outbound cap, mid-online panic quarantined while
# bit-exact siblings finish), the retry_after_ms load-shed round-trip,
# and the load generator with governor budgets on plus an injected
# mid-online panic — the clean siblings must still verify bit-exact and
# the metrics must show exactly one quarantined session.
#
# --silent-ot-smoke exercises the silent-OT offline subsystem in release
# mode: the η-sweep bit-exactness acceptance (tests/silent_ot.rs), the
# silent chaos batch (seeded cuts, tag flips over the 0x40–0x43 frames,
# cut-after-expansion checkpoint/resume, mixed silent+IKNP fleet), and
# the pinned silent-vs-KK13 byte-count comparison (tests/comm_shape.rs).
#
# --transformer-smoke exercises the generalized op pipeline in release
# mode: the transformer acceptance suite (logits bit-exact vs the
# plaintext oracle across eta in {2,3,4,8}; warm-from-pool with zero
# offline-phase bytes), the transformer chaos tests (tag-flip sweep over
# the new frames; cut during a MATMUL_OPENINGS exchange -> checkpoint ->
# bit-exact resume), and the load generator serving the encoder block
# through the event-loop workers.
#
# --bench regenerates the machine-readable benchmark files:
# BENCH_silent_ot.json (offline/online bytes and wall-clock per table
# workload, with the silent-vs-IKNP offline comparison pinned as the
# first entry — the ≥10× OT-extension reduction is asserted at
# generation time), BENCH_transformer.json (cold vs warm offline and
# online costs of one encoder-block prediction, bit-exactness asserted
# at generation time), and BENCH_crypto.json (blocks/sec per crypto
# backend for AES/MMO/PRG plus the IKNP transpose wall time, with the
# ≥4× AES-NI speedup asserted at generation time where the CPU has it).
#
# The container has no network access to crates.io; all dependencies are
# vendored as stubs under stubs/ (see stubs/README.md), so every cargo
# invocation runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

while [[ $# -gt 0 ]]; do
  case "$1" in
    --chaos-seeds)
      [[ $# -ge 2 ]] || { echo "--chaos-seeds requires a value" >&2; exit 2; }
      export CHAOS_SEEDS="$2"
      shift 2
      ;;
    --serve-smoke)
      SERVE_SMOKE=1
      shift
      ;;
    --cnn-serve-smoke)
      CNN_SERVE_SMOKE=1
      shift
      ;;
    --async-serve-smoke)
      ASYNC_SERVE_SMOKE=1
      shift
      ;;
    --wire-fuzz-smoke)
      WIRE_FUZZ_SMOKE=1
      shift
      ;;
    --governor-smoke)
      GOVERNOR_SMOKE=1
      shift
      ;;
    --silent-ot-smoke)
      SILENT_OT_SMOKE=1
      shift
      ;;
    --transformer-smoke)
      TRANSFORMER_SMOKE=1
      shift
      ;;
    --bench)
      RUN_BENCH=1
      shift
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

if [[ "${SERVE_SMOKE:-0}" == "1" ]]; then
  echo "==> serve smoke: 8 concurrent clients x 2 requests"
  cargo run --release --example serve_load -- --clients 8 --requests 2
fi

if [[ "${CNN_SERVE_SMOKE:-0}" == "1" ]]; then
  echo "==> CNN serve smoke: 4 concurrent clients x 2 requests"
  cargo run --release --example serve_load -- --cnn --clients 4 --requests 2
fi

if [[ "${ASYNC_SERVE_SMOKE:-0}" == "1" ]]; then
  echo "==> async serve smoke: multiplexed event-loop serving, cut/resume, warm pool"
  cargo test --release --test serve_scale
  cargo test --release --test chaos event_loop
  cargo run --release --example serve_load -- --clients 12 --requests 2 --sessions-per-worker 4
fi

if [[ "${WIRE_FUZZ_SMOKE:-0}" == "1" ]]; then
  echo "==> wire fuzz smoke: frame totality, tag-flip sweep, transport contract"
  cargo test --release --test wire_roundtrip
  cargo test --release --test chaos tag_flip_at_every_entry_point_names_the_expected_frame
  cargo test --release --test transport_contract
fi

if [[ "${GOVERNOR_SMOKE:-0}" == "1" ]]; then
  echo "==> governor smoke: hostile-peer eviction, panic quarantine, load shedding"
  cargo test --release --test chaos governor_
  cargo test --release --test chaos mid_online_panic
  cargo test --release --test serve retry_after
  cargo run --release --example serve_load -- \
    --clients 8 --requests 2 --sessions-per-worker 4 --governor --inject-panic 3
fi

if [[ "${SILENT_OT_SMOKE:-0}" == "1" ]]; then
  echo "==> silent-OT smoke: eta-sweep bit-exactness, silent chaos, pinned byte counts"
  cargo test --release --test silent_ot
  cargo test --release --test chaos silent
  cargo test --release --test comm_shape silent_extension_bytes_beat_kk13_by_an_order_of_magnitude
fi

if [[ "${TRANSFORMER_SMOKE:-0}" == "1" ]]; then
  echo "==> transformer smoke: eta-sweep bit-exactness, warm pool, chaos, served load"
  cargo test --release --test transformer
  cargo test --release --test chaos transformer_tag_flip
  cargo test --release --test chaos cut_during_matmul
  cargo run --release --example serve_load -- --transformer --clients 4 --requests 2
fi

if [[ "${RUN_BENCH:-0}" == "1" ]]; then
  echo "==> bench: regenerating BENCH_silent_ot.json"
  cargo run --release -p abnn2-bench --bin bench_json -- BENCH_silent_ot.json
  echo "==> bench: regenerating BENCH_transformer.json"
  cargo run --release -p abnn2-bench --bin bench_json -- --transformer BENCH_transformer.json
  echo "==> bench: regenerating BENCH_crypto.json"
  cargo run --release -p abnn2-bench --bin bench_json -- --crypto BENCH_crypto.json
fi

echo "All checks passed."
