#!/usr/bin/env bash
# Full local CI gate: build, test, formatting, lints. Run from the repo root.
#
#   ./scripts/check.sh
#
# The container has no network access to crates.io; all dependencies are
# vendored as stubs under stubs/ (see stubs/README.md), so every cargo
# invocation runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "All checks passed."
