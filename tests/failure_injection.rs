//! Failure injection across crate boundaries: disconnections, truncated and
//! corrupted messages must surface as typed errors — `Channel` for a dead
//! peer, `Malformed` for framing violations — never as silent wrong answers
//! or hangs. The [`FaultyTransport`] decorator injects the faults at the
//! transport layer, exercising the same code paths a flaky real network
//! would.

use abnn2::core::inference::{SecureClient, SecureServer};
use abnn2::core::ProtocolError;
use abnn2::crypto::Block;
use abnn2::gc::{circuits, GcError, YaoEvaluator, YaoGarbler};
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{run_pair, Endpoint, Fault, FaultyTransport, NetworkModel, TransportError};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::Network;
use abnn2::ot::OtError;
use rand::SeedableRng;

#[test]
fn dropped_peer_fails_base_ot_setup() {
    let (mut a, b) = Endpoint::pair(NetworkModel::instant());
    drop(b);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    assert!(abnn2::ot::KkChooser::setup(&mut a, &mut rng).is_err());
    assert!(abnn2::ot::IknpSender::setup(&mut a, &mut rng).is_err());
}

#[test]
fn client_abort_mid_inference_surfaces_to_server() {
    let net = Network::new(&[16, 8, 4], 2);
    let q = QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        },
    );
    let server = SecureServer::new(q);
    let info = server.public_info();
    let (server_result, (), _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            server.run(ch, 1, &mut rng)
        },
        move |ch| {
            // The client handshakes and sets up the session, then walks
            // away before the offline phase.
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            let ours = abnn2::core::SessionParams::for_model(
                &info,
                abnn2::core::ReluVariant::Oblivious,
                1,
            );
            abnn2::core::handshake::handshake_client(ch, ours, &[0; 16], false).expect("handshake");
            let _ = abnn2::core::session::ClientSession::setup(ch, &mut rng).expect("setup");
        },
    );
    assert!(server_result.is_err(), "server must observe the aborted client");
}

/// The chooser's transport dies mid-way through the base-OT setup: the
/// chooser sees the cut as `Channel` (Closed), and the sender — starved of
/// the chooser's reply — also fails with `Channel`, not `Malformed`.
#[test]
fn faulty_cut_mid_setup_distinguishes_closed_from_malformed() {
    let (pair_a, pair_b) = Endpoint::pair(NetworkModel::instant());
    let (sender_result, chooser_result) = std::thread::scope(|s| {
        let h1 = s.spawn(move || {
            let mut ch = pair_a;
            let mut rng = rand::rngs::StdRng::seed_from_u64(15);
            abnn2::ot::IknpSender::setup(&mut ch, &mut rng)
        });
        let h2 = s.spawn(move || {
            // The IKNP sender's setup runs base OTs as chooser: its first
            // send is the point batch. Cutting at message 0 kills the
            // session before any protocol byte leaves this side.
            let mut ch = FaultyTransport::new(pair_b, Fault::CutAfterMessages(0));
            let mut rng = rand::rngs::StdRng::seed_from_u64(16);
            abnn2::ot::IknpReceiver::setup(&mut ch, &mut rng)
        });
        (h1.join().expect("sender"), h2.join().expect("receiver"))
    });
    assert_eq!(sender_result.err(), Some(OtError::Channel));
    assert_eq!(chooser_result.err(), Some(OtError::Channel));
}

#[test]
fn truncated_gc_tables_detected() {
    let circuit = circuits::relu_reshare_circuit(8);
    let (evaluator_result, (), _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            let mut yao = YaoEvaluator::setup(ch, &mut rng).expect("setup");
            yao.run(ch, &circuit, &[false; 8])
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(6);
            let mut garbler = YaoGarbler::setup(ch, &mut rng).expect("setup");
            // A malicious/buggy garbler for a *different* circuit: the
            // evaluator's size checks must reject the material.
            let small = circuits::relu_sign_circuit(8);
            garbler.run(ch, &small, &[false; 8], &mut rng).ok();
        },
    );
    assert!(
        matches!(
            evaluator_result,
            Err(GcError::Malformed(_)) | Err(GcError::Channel) | Err(GcError::Ot(_))
        ),
        "got {evaluator_result:?}"
    );
}

/// A truncated AND-table message — injected at the transport, as a lossy
/// middlebox would — must be rejected as `Malformed`, not misevaluated.
#[test]
fn faulty_truncated_gc_table_is_malformed() {
    let circuit = circuits::relu_reshare_circuit(8);
    let circuit2 = circuit.clone();
    let (pair_g, pair_e) = Endpoint::pair(NetworkModel::instant());
    let (garbler_result, evaluator_result) = std::thread::scope(|s| {
        let h1 = s.spawn(move || {
            // Garbler send order: 0 = base-OT points (inside setup),
            // 1 = its own input labels, 2 = the AND tables. Truncating the
            // table message to a non-multiple of 16 breaks block framing.
            let mut ch =
                FaultyTransport::new(pair_g, Fault::TruncateMessage { index: 2, keep: 21 });
            let mut rng = rand::rngs::StdRng::seed_from_u64(25);
            let mut garbler = YaoGarbler::setup(&mut ch, &mut rng).expect("setup");
            garbler.run(&mut ch, &circuit, &[false; 16], &mut rng)
        });
        let h2 = s.spawn(move || {
            let mut ch = pair_e;
            let mut rng = rand::rngs::StdRng::seed_from_u64(26);
            let mut yao = YaoEvaluator::setup(&mut ch, &mut rng).expect("setup");
            yao.run(&mut ch, &circuit2, &[false; 8])
        });
        (h1.join().expect("garbler"), h2.join().expect("evaluator"))
    });
    assert_eq!(
        evaluator_result.err(),
        Some(GcError::Malformed("garbled table stream frame length")),
        "truncation must be typed as Malformed, not Closed"
    );
    // The garbler may or may not notice (the evaluator hangs up); it must
    // not report success with a corrupted transcript unless it finished
    // sending before the peer vanished.
    let _ = garbler_result;
}

/// A single flipped byte in the chooser's base-OT point batch must be
/// caught by curve-point validation — never decrypt to a wrong message.
#[test]
fn faulty_corrupted_ot_message_detected() {
    let (pair_s, pair_c) = Endpoint::pair(NetworkModel::instant());
    let (sender_result, chooser_result) = std::thread::scope(|s| {
        let h1 = s.spawn(move || {
            let mut ch = pair_s;
            let mut rng = rand::rngs::StdRng::seed_from_u64(35);
            abnn2::ot::base::send(&mut ch, &[(Block::ZERO, Block::ONES)], &mut rng)
        });
        let h2 = s.spawn(move || {
            // Chooser send 0 is the R point batch; flip one byte of the
            // y-coordinate in flight.
            let mut ch = FaultyTransport::new(pair_c, Fault::CorruptMessage { index: 0, byte: 40 });
            let mut rng = rand::rngs::StdRng::seed_from_u64(36);
            abnn2::ot::base::recv(&mut ch, &[true], &mut rng)
        });
        (h1.join().expect("sender"), h2.join().expect("chooser"))
    });
    assert_eq!(sender_result.err(), Some(OtError::InvalidPoint));
    // The sender aborts without replying, so the honest chooser sees the
    // hangup as a channel failure (or an invalid reply), never success.
    assert!(chooser_result.is_err());
}

#[test]
fn wrong_length_triplet_payload_rejected() {
    use abnn2::core::matmul::{triplet_server, TripletMode};
    use abnn2::ot::{FragmentChooser, KkSender, OfflineMode};
    let ring = Ring::new(32);
    let scheme = FragmentScheme::binary();
    let (server_result, (), _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let mut kk = FragmentChooser::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
            triplet_server(ch, &mut kk, &[1, 0], 1, 2, 1, &scheme, ring, TripletMode::OneBatch)
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(8);
            let mut kk = KkSender::setup(ch, &mut rng).expect("setup");
            // Participate in the OT extension but then send a correctly
            // tagged ciphertext batch of the wrong length: the frame layer
            // passes it through, the triplet length check must reject it.
            let _ = kk.extend(ch, 2).expect("extend");
            ch.send(&[abnn2::net::wire::tags::TRIPLET_MASKED, 0, 0, 0]).expect("send");
        },
    );
    assert_eq!(
        server_result.err(),
        Some(ProtocolError::Malformed("triplet ciphertext batch length"))
    );
}

#[test]
fn invalid_curve_point_rejected_by_base_ot() {
    let (pair_a, pair_b) = Endpoint::pair(NetworkModel::instant());
    let (sender_result, ()) = std::thread::scope(|s| {
        let h1 = s.spawn(move || {
            let mut ch = pair_a;
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            abnn2::ot::base::send(&mut ch, &[(Block::ZERO, Block::ONES)], &mut rng)
        });
        let h2 = s.spawn(move || {
            let mut ch = pair_b;
            // Receive the setup point, then reply with a well-framed
            // 64-byte batch that is not a curve point: framing passes,
            // curve validation must reject it.
            let _ = ch.recv().expect("setup point");
            let mut junk = vec![abnn2::net::wire::tags::BASE_POINT_BATCH];
            junk.extend_from_slice(&[0xFFu8; 64]);
            ch.send(&junk).expect("send junk");
        });
        (h1.join().expect("sender"), h2.join().expect("receiver"))
    });
    assert_eq!(sender_result.err(), Some(OtError::InvalidPoint));
}

#[test]
fn transport_errors_convert_through_the_stack() {
    // TransportError → {Ot,Gc,Protocol}Error conversions preserve the
    // Closed/Malformed distinction and display meaningfully.
    let p: ProtocolError = TransportError::Closed.into();
    assert_eq!(p, ProtocolError::Channel);
    let p: ProtocolError = TransportError::Malformed("u64 frame length").into();
    assert_eq!(p, ProtocolError::Malformed("u64 frame length"));
    let p: ProtocolError = OtError::Channel.into();
    assert!(p.to_string().contains("oblivious transfer"));
    let p: ProtocolError = GcError::Malformed("x").into();
    assert!(p.to_string().contains("garbled circuit"));
    let g: GcError = TransportError::Malformed("block batch frame length").into();
    assert_eq!(g, GcError::Malformed("block batch frame length"));
    let o: OtError = TransportError::Closed.into();
    assert_eq!(o, OtError::Channel);
}

#[test]
fn mismatched_batch_dimensions_rejected_before_io() {
    let net = Network::new(&[8, 4], 10);
    let q = QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 0,
            scheme: FragmentScheme::ternary(),
        },
    );
    let server = SecureServer::new(q);
    let client = SecureClient::new(server.public_info());
    let (mut a, _b) = Endpoint::pair(NetworkModel::instant());
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    assert_eq!(
        server.offline(&mut a, 0, &mut rng).err(),
        Some(ProtocolError::Dimension("batch must be positive"))
    );
    let (mut c, _d) = Endpoint::pair(NetworkModel::instant());
    assert_eq!(
        client.offline(&mut c, 0, &mut rng).err(),
        Some(ProtocolError::Dimension("batch must be positive"))
    );
}
