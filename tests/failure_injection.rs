//! Failure injection across crate boundaries: disconnections, truncated and
//! corrupted messages must surface as typed errors, never as silent wrong
//! answers or hangs.

use abnn2::core::inference::{SecureClient, SecureServer};
use abnn2::core::ProtocolError;
use abnn2::crypto::Block;
use abnn2::gc::{circuits, GcError, YaoEvaluator, YaoGarbler};
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{run_pair, ChannelError, Endpoint, NetworkModel};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::Network;
use abnn2::ot::OtError;
use rand::SeedableRng;

#[test]
fn dropped_peer_fails_base_ot_setup() {
    let (mut a, b) = Endpoint::pair(NetworkModel::instant());
    drop(b);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    assert!(abnn2::ot::KkChooser::setup(&mut a, &mut rng).is_err());
    assert!(abnn2::ot::IknpSender::setup(&mut a, &mut rng).is_err());
}

#[test]
fn client_abort_mid_inference_surfaces_to_server() {
    let net = Network::new(&[16, 8, 4], 2);
    let q = QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        },
    );
    let server = SecureServer::new(q);
    let (server_result, (), _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            server.run(ch, 1, &mut rng)
        },
        move |ch| {
            // The client walks away after session setup.
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            let _ = abnn2::core::session::ClientSession::setup(ch, &mut rng).expect("setup");
        },
    );
    assert!(server_result.is_err(), "server must observe the aborted client");
}

#[test]
fn truncated_gc_tables_detected() {
    let circuit = circuits::relu_reshare_circuit(8);
    let (evaluator_result, (), _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            let mut yao = YaoEvaluator::setup(ch, &mut rng).expect("setup");
            yao.run(ch, &circuit, &[false; 8])
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(6);
            let mut garbler = YaoGarbler::setup(ch, &mut rng).expect("setup");
            // A malicious/buggy garbler for a *different* circuit: the
            // evaluator's size checks must reject the material.
            let small = circuits::relu_sign_circuit(8);
            garbler.run(ch, &small, &[false; 8], &mut rng).ok();
        },
    );
    assert!(
        matches!(evaluator_result, Err(GcError::Malformed(_)) | Err(GcError::Channel) | Err(GcError::Ot(_))),
        "got {evaluator_result:?}"
    );
}

#[test]
fn wrong_length_triplet_payload_rejected() {
    use abnn2::core::matmul::{triplet_server, TripletMode};
    use abnn2::ot::{KkChooser, KkSender};
    let ring = Ring::new(32);
    let scheme = FragmentScheme::binary();
    let (server_result, (), _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let mut kk = KkChooser::setup(ch, &mut rng).expect("setup");
            triplet_server(ch, &mut kk, &[1, 0], 1, 2, 1, &scheme, ring, TripletMode::OneBatch)
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(8);
            let mut kk = KkSender::setup(ch, &mut rng).expect("setup");
            // Participate in the OT extension but then send garbage of the
            // wrong length instead of the ciphertext batch.
            let _ = kk.extend(ch, 2).expect("extend");
            ch.send(&[0u8; 3]).expect("send");
        },
    );
    assert_eq!(
        server_result.err(),
        Some(ProtocolError::Malformed("triplet ciphertext batch length"))
    );
}

#[test]
fn invalid_curve_point_rejected_by_base_ot() {
    let (pair_a, pair_b) = Endpoint::pair(NetworkModel::instant());
    let (sender_result, ()) = std::thread::scope(|s| {
        let h1 = s.spawn(move || {
            let mut ch = pair_a;
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            abnn2::ot::base::send(&mut ch, &[(Block::ZERO, Block::ONES)], &mut rng)
        });
        let h2 = s.spawn(move || {
            let mut ch = pair_b;
            // Receive the setup point, then reply with 64 bytes that are
            // not a curve point.
            let _ = ch.recv().expect("setup point");
            ch.send(&[0xFFu8; 64]).expect("send junk");
        });
        (h1.join().expect("sender"), h2.join().expect("receiver"))
    });
    assert_eq!(sender_result.err(), Some(OtError::InvalidPoint));
}

#[test]
fn channel_errors_convert_through_the_stack() {
    // ChannelError → OtError → GcError → ProtocolError conversions exist
    // and display meaningfully.
    let p: ProtocolError = ChannelError.into();
    assert_eq!(p, ProtocolError::Channel);
    let p: ProtocolError = OtError::Channel.into();
    assert!(p.to_string().contains("oblivious transfer"));
    let p: ProtocolError = GcError::Malformed("x").into();
    assert!(p.to_string().contains("garbled circuit"));
}

#[test]
fn mismatched_batch_dimensions_rejected_before_io() {
    let net = Network::new(&[8, 4], 10);
    let q = QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 0,
            scheme: FragmentScheme::ternary(),
        },
    );
    let server = SecureServer::new(q);
    let client = SecureClient::new(server.public_info());
    let (mut a, _b) = Endpoint::pair(NetworkModel::instant());
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    assert_eq!(
        server.offline(&mut a, 0, &mut rng).err(),
        Some(ProtocolError::Dimension("batch must be positive"))
    );
    let (mut c, _d) = Endpoint::pair(NetworkModel::instant());
    assert_eq!(
        client.offline(&mut c, 0, &mut rng).err(),
        Some(ProtocolError::Dimension("batch must be positive"))
    );
}
