//! Cross-crate integration: the full secure-inference pipeline against the
//! plaintext oracle, and agreement between ABNN² and both end-to-end
//! baselines on identical models and inputs.

use abnn2::core::inference::{SecureClient, SecureServer};
use abnn2::core::relu::ReluVariant;
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{run_pair, NetworkModel};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::{Network, SyntheticMnist};
use rand::SeedableRng;

fn trained_quantized(
    scheme: FragmentScheme,
    fw: u32,
    ring_bits: u32,
    seed: u64,
) -> QuantizedNetwork {
    let data = SyntheticMnist::generate(100, 0, seed);
    let mut net = Network::new(&[784, 10, 8, 10], seed);
    net.train_epoch(&data.train, 0.05);
    let config =
        QuantConfig { ring: Ring::new(ring_bits), frac_bits: 8, weight_frac_bits: fw, scheme };
    QuantizedNetwork::quantize(&net, config)
}

fn inputs_fp(q: &QuantizedNetwork, batch: usize, seed: u64) -> Vec<Vec<u64>> {
    let data = SyntheticMnist::generate(batch, 0, seed);
    let codec = q.config.activation_codec();
    data.train.iter().map(|s| codec.encode_vec(&s.pixels)).collect()
}

fn run_abnn2(
    q: &QuantizedNetwork,
    inputs: &[Vec<u64>],
    variant: ReluVariant,
    seed: u64,
) -> Vec<Vec<u64>> {
    let batch = inputs.len();
    let server = SecureServer::new(q.clone()).with_variant(variant);
    let client = SecureClient::new(server.public_info()).with_variant(variant);
    let inputs2 = inputs.to_vec();
    let (_, y, _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            server.run(ch, batch, &mut rng).expect("server");
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
            let state = client.offline(ch, batch, &mut rng).expect("offline");
            client.online_raw(ch, state, &inputs2, &mut rng).expect("online")
        },
    );
    (0..batch).map(|k| y.col(k)).collect()
}

#[test]
fn secure_inference_matches_oracle_across_schemes_and_rings() {
    for (scheme, fw, ring_bits) in [
        (FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 4, 32),
        (FragmentScheme::signed_bit_fields(&[3, 3, 2]), 4, 32),
        (FragmentScheme::signed_bit_fields(&[2, 1]), 2, 64),
        (FragmentScheme::ternary(), 0, 32),
        (FragmentScheme::binary(), 0, 32),
    ] {
        let label = scheme.label();
        let q = trained_quantized(scheme, fw, ring_bits, 100);
        let inputs = inputs_fp(&q, 2, 101);
        let expected: Vec<Vec<u64>> = inputs.iter().map(|x| q.forward_exact(x)).collect();
        let got = run_abnn2(&q, &inputs, ReluVariant::Oblivious, 102);
        assert_eq!(got, expected, "scheme {label} ring {ring_bits}");
    }
}

#[test]
fn optimized_and_oblivious_relu_agree() {
    let q = trained_quantized(FragmentScheme::signed_bit_fields(&[2, 2]), 2, 32, 110);
    let inputs = inputs_fp(&q, 3, 111);
    let a = run_abnn2(&q, &inputs, ReluVariant::Oblivious, 112);
    let b = run_abnn2(&q, &inputs, ReluVariant::Optimized, 113);
    assert_eq!(a, b);
}

#[test]
fn abnn2_and_minionn_produce_identical_predictions() {
    use abnn2::baselines::minionn::{MinionnClient, MinionnServer};
    let q = trained_quantized(FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 4, 32, 120);
    let inputs = inputs_fp(&q, 2, 121);
    let ours = run_abnn2(&q, &inputs, ReluVariant::Oblivious, 122);

    let server = MinionnServer::new(q.clone(), 256);
    let client = MinionnClient::new(server.public_info(), 256);
    let inputs2 = inputs.clone();
    let (_, y, _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(123);
            server.run(ch, 2, &mut rng).expect("server");
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(124);
            client.run(ch, &inputs2, &mut rng).expect("client")
        },
    );
    let theirs: Vec<Vec<u64>> = (0..2).map(|k| y.col(k)).collect();
    assert_eq!(ours, theirs, "two different offline protocols, same function");
}

#[test]
fn abnn2_and_quotient_produce_identical_predictions_on_ternary() {
    use abnn2::baselines::quotient::{QuotientClient, QuotientServer};
    let q = trained_quantized(FragmentScheme::ternary(), 0, 32, 130);
    let inputs = inputs_fp(&q, 2, 131);
    let ours = run_abnn2(&q, &inputs, ReluVariant::Oblivious, 132);

    let server = QuotientServer::new(q.clone());
    let client = QuotientClient::new(server.public_info());
    let inputs2 = inputs.clone();
    let (_, y, _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(133);
            server.run(ch, 2, &mut rng).expect("server");
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(134);
            client.run(ch, &inputs2, &mut rng).expect("client")
        },
    );
    let theirs: Vec<Vec<u64>> = (0..2).map(|k| y.col(k)).collect();
    assert_eq!(ours, theirs);
}

#[test]
fn logits_track_plaintext_classification() {
    let q = trained_quantized(FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 4, 32, 140);
    let data = SyntheticMnist::generate(3, 0, 141);
    let inputs: Vec<Vec<f64>> = data.train.iter().map(|s| s.pixels.clone()).collect();
    let server = SecureServer::new(q.clone());
    let client = SecureClient::new(server.public_info());
    let inputs2 = inputs.clone();
    let (_, logits, _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(142);
            server.run(ch, 3, &mut rng).expect("server");
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(143);
            client.run(ch, &inputs2, &mut rng).expect("client")
        },
    );
    for (k, input) in inputs.iter().enumerate() {
        assert_eq!(abnn2::nn::model::argmax(&logits[k]), q.predict(input), "sample {k}");
    }
}
