//! Seeded chaos harness: randomized fault plans on both sides of a
//! resilient inference session.
//!
//! For every seed, both parties run under [`FaultPlan::seeded`] — random
//! combinations of connection cuts (either direction), truncations,
//! corruptions and delays — while the resilient drivers reconnect and
//! resume. The property under test is the robustness contract:
//!
//! * every seed **terminates** before its watchdog deadline (no hangs),
//! * no thread **panics**,
//! * an `Ok` outcome carries logits **bit-identical** to
//!   [`QuantizedNetwork::forward_exact`] — a fault may abort a run but
//!   must never corrupt an answer,
//! * an `Err` outcome is a **typed** [`ProtocolError`].
//!
//! One carve-out: the protocol is semi-honest and carries no message
//! MACs, so a seed whose plan drew a *payload corruption* fault may
//! produce wrong logits undetected (a corrupted channel is outside the
//! paper's threat model — real TCP provides integrity). For those seeds
//! the suite still enforces no-hang/no-panic/typed-errors; corruption of
//! *structured* material (curve points, GC tables) is separately asserted
//! to be detected in `failure_injection.rs`.
//!
//! The seed count defaults to 64 and can be raised without recompiling:
//!
//! ```sh
//! CHAOS_SEEDS=256 cargo test --test chaos
//! ```

use abnn2::core::handshake::{handshake_client_ext, HelloRequest, SessionParams};
use abnn2::core::inference::{
    ClientOffline, PublicModelInfo, PublicTransformerInfo, SecureClient, SecureServer,
};
use abnn2::core::resilient::{ResilientClient, ResilientServer};
use abnn2::core::session::ClientSession;
use abnn2::core::{ExecConfig, ProtocolError, SessionDeadlines};
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{
    sim_link, Endpoint, Fault, FaultPlan, FaultyTransport, NetworkModel, RetryPolicy, TcpTransport,
    Transport,
};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::transformer::QuantizedTransformer;
use abnn2::nn::Network;
use abnn2::serve::{GovernorConfig, ServeClient, ServeConfig, Server};
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn chaos_seed_count() -> u64 {
    std::env::var("CHAOS_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

fn tiny_model() -> QuantizedNetwork {
    let net = Network::new(&[10, 5, 4], 1234);
    QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        },
    )
}

/// Expected protocol message count per attempt, the horizon for seeded
/// fault indices: large enough to land faults in every phase, small
/// enough that most plans actually fire.
const FAULT_HORIZON: u64 = 48;

/// Derives the fault plan for one (seed, attempt, side) triple. Attempts
/// 0 and 1 draw from the seeded catalogue; attempt 2+ runs clean so a
/// session that survives to the last attempt can actually finish — the
/// contract under test is "exact answer or typed error", not liveness
/// under unbounded adversarial faults.
fn plan_for(seed: u64, attempt: u32, side: u64) -> FaultPlan {
    if attempt >= 2 {
        return FaultPlan::none();
    }
    let mix = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(attempt))
        .wrapping_mul(2)
        .wrapping_add(side);
    FaultPlan::seeded(mix, FAULT_HORIZON)
}

/// True when any of the seed's fault plans (either side, either faulty
/// attempt) drew a payload-corruption fault — the one class that can
/// silently alter logits in the semi-honest model (see module docs).
fn corruption_drawn(seed: u64) -> bool {
    (0..2u32).any(|attempt| {
        (0..2u64).any(|side| {
            plan_for(seed, attempt, side)
                .faults()
                .iter()
                .any(|f| matches!(f, abnn2::net::Fault::CorruptMessage { .. }))
        })
    })
}

/// Runs one full chaos trial; returns the client outcome and both
/// parties' error (if any) for the final assertion.
fn run_seed(
    seed: u64,
    q: &QuantizedNetwork,
    inputs: &[Vec<u64>],
    expected: &[u64],
    silent: bool,
) -> Result<(), String> {
    let deadlines = SessionDeadlines::uniform(Duration::from_secs(2));
    let policy = RetryPolicy::no_delay(3);
    let (dialer, listener) = sim_link(NetworkModel::instant());

    let server = ResilientServer::new(SecureServer::new(q.clone()))
        .with_policy(policy)
        .with_deadlines(deadlines);
    let client =
        ResilientClient::new(SecureClient::new(PublicModelInfo::from(q)).with_silent(silent))
            .with_policy(policy)
            .with_deadlines(deadlines);

    std::thread::scope(|scope| {
        let srv = scope.spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(1000));
            server.serve_one(
                |attempt| {
                    listener
                        .accept_timeout(Duration::from_secs(2))
                        .map(|ep| FaultyTransport::with_plan(ep, plan_for(seed, attempt, 0)))
                },
                &mut rng,
            )
        });

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(2000));
        let client_result = client.run_raw(
            |attempt| {
                dialer.dial().map(|ep| FaultyTransport::with_plan(ep, plan_for(seed, attempt, 1)))
            },
            inputs,
            &mut rng,
        );
        let server_result = srv.join().expect("server thread must not panic");

        match client_result {
            Ok((y, _report)) => {
                if y.col(0) != expected && !corruption_drawn(seed) {
                    return Err(format!(
                        "seed {seed}: WRONG ANSWER — got {:?}, want {expected:?}",
                        y.col(0)
                    ));
                }
            }
            Err(e) => {
                // Typed by construction; exercise Display to catch panics
                // in the formatting path too.
                let _ = e.to_string();
                if let ProtocolError::Dimension(_) = e {
                    return Err(format!("seed {seed}: fault mapped to a caller bug: {e}"));
                }
            }
        }
        if let Err(e) = server_result {
            let _ = e.to_string();
        }
        Ok(())
    })
}

/// Per-seed watchdog: the whole trial must finish well before this.
const SEED_DEADLINE: Duration = Duration::from_secs(30);

/// Runs `n` seeds starting at `offset` under a per-seed watchdog,
/// collecting contract violations.
fn chaos_batch(offset: u64, n: u64, silent: bool) -> Vec<String> {
    let q = tiny_model();
    let inputs: Vec<Vec<u64>> = vec![vec![700, 1 << 8, 3, 90, 0, 5, 2 << 7, 33, 12, 256]];
    let expected = q.forward_exact(&inputs[0]);

    let mut failures = Vec::new();
    for seed in offset..offset + n {
        // Watchdog: run the trial on a helper thread; a hang turns into a
        // typed test failure instead of a stuck CI job.
        let (tx, rx) = mpsc::channel();
        let q2 = q.clone();
        let inputs2 = inputs.clone();
        let expected2 = expected.clone();
        let trial = std::thread::spawn(move || {
            let outcome = run_seed(seed, &q2, &inputs2, &expected2, silent);
            let _ = tx.send(outcome);
        });
        match rx.recv_timeout(SEED_DEADLINE) {
            Ok(Ok(())) => {
                trial.join().expect("trial thread");
            }
            Ok(Err(msg)) => {
                trial.join().expect("trial thread");
                failures.push(msg);
            }
            Err(_) => {
                // Leak the hung thread; the process will be torn down at
                // test exit. Report which seed wedged.
                failures.push(format!("seed {seed}: HANG (no result within {SEED_DEADLINE:?})"));
            }
        }
    }
    failures
}

#[test]
fn chaos_seeds_complete_exactly_or_fail_typed() {
    let n = chaos_seed_count();
    let failures = chaos_batch(0, n, false);
    assert!(
        failures.is_empty(),
        "{} of {n} chaos seeds violated the contract:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The same seeded cut/corrupt/truncate/delay catalogue over sessions
/// negotiated onto the **silent** offline backend — faults now land on
/// SILENT_* frames (base columns, SPCOT masks/sums, derandomization bits)
/// as well as the shared ones. The contract is unchanged: exact answer or
/// typed error, no hangs, no panics.
#[test]
fn silent_chaos_seeds_complete_exactly_or_fail_typed() {
    let n = chaos_seed_count().div_ceil(2);
    let failures = chaos_batch(10_000, n, true);
    assert!(
        failures.is_empty(),
        "{} of {n} silent chaos seeds violated the contract:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// A flipped frame tag at *any* point in the session — swept over every
/// send index on both sides — must surface as a typed error whose message
/// names the frame the victim expected (`"… frame tag"`), never as a hang,
/// a panic, or a wrong answer. This is the typed-wire-layer guarantee the
/// one-byte tag buys: a desynchronized or corrupted stream is caught at the
/// first mis-tagged frame, at whichever protocol entry point receives it.
#[test]
fn tag_flip_at_every_entry_point_names_the_expected_frame() {
    flip_sweep(false, 20);
}

/// The same sweep over a silent session: the first twenty send indices on
/// either side cover the hello, base-OT bootstrap (SILENT_BASE_COLUMNS),
/// SPCOT mask/sum refills and derandomization frames, so a flipped tag on
/// any of the new 0x40–0x43 frames must also die typed, naming the frame.
#[test]
fn silent_tag_flip_at_every_entry_point_names_the_expected_frame() {
    flip_sweep(true, 26);
}

/// `sweep` send indices must reach past the end of the session on either
/// side, so the suite also witnesses clean completions.
fn flip_sweep(silent: bool, sweep: u64) {
    let q = tiny_model();
    let inputs: Vec<Vec<u64>> = vec![vec![700, 1 << 8, 3, 90, 0, 5, 2 << 7, 33, 12, 256]];
    let expected = q.forward_exact(&inputs[0]);

    let names_frame = |e: &ProtocolError| e.to_string().contains("frame tag");

    for side in 0..2u64 {
        let mut landed = 0u32;
        let mut clean = 0u32;
        for index in 0..sweep {
            let (a, b) = Endpoint::pair(NetworkModel::instant());
            let flip = Fault::FlipTag { index };
            let mut sch = FaultyTransport::new(a, if side == 0 { flip } else { Fault::None });
            let mut cch = FaultyTransport::new(b, if side == 1 { flip } else { Fault::None });
            let server = SecureServer::new(q.clone());
            let client = SecureClient::new(PublicModelInfo::from(&q)).with_silent(silent);
            let inputs2 = inputs.clone();
            let (sres, cres) = std::thread::scope(|scope| {
                let srv = scope.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(index + 9);
                    server.run(&mut sch, 1, &mut rng)
                });
                let mut rng = rand::rngs::StdRng::seed_from_u64(index + 77);
                let cres = client
                    .offline(&mut cch, 1, &mut rng)
                    .and_then(|state| client.online_raw(&mut cch, state, &inputs2, &mut rng));
                // Close the client's endpoint before joining: a server
                // still waiting on a client that already errored out must
                // see `Closed`, not block forever.
                drop(cch);
                (srv.join().expect("server thread must not panic"), cres)
            });
            match (&sres, &cres) {
                (Ok(()), Ok(y)) => {
                    clean += 1;
                    assert_eq!(y.col(0), expected, "side {side} index {index}: wrong logits");
                }
                _ => {
                    landed += 1;
                    // The victim of the flipped tag must report a typed
                    // error naming the expected frame; the flipping side
                    // may only see the resulting disconnection.
                    let named = sres.as_ref().err().is_some_and(names_frame)
                        || cres.as_ref().err().is_some_and(names_frame);
                    assert!(
                        named,
                        "side {side} index {index}: no typed frame-tag error \
                         (server: {sres:?}, client: {cres:?})"
                    );
                }
            }
        }
        assert!(landed >= 5, "side {side}: only {landed} flips landed — sweep too short?");
        assert!(clean >= 1, "side {side}: no clean run — raise the sweep to cover the session");
    }
}

/// A client that completes the offline phase and then vanishes leaves the
/// serving frontend's session driver **suspended in the event loop** at
/// the first online recv. The cut must surface as a retryable failure
/// that parks the offline state in the checkpoint store, and a reconnect
/// with the same token must resume to logits bit-identical to an
/// uninterrupted blocking run — the suspended-state path may not diverge
/// from the thread-per-session path it replaced.
#[test]
fn event_loop_cut_while_parked_checkpoints_and_resumes_bit_exact() {
    let q = tiny_model();
    let x: Vec<u64> = vec![700, 1 << 8, 3, 90, 0, 5, 2 << 7, 33, 12, 256];
    let expected = q.forward_exact(&x);
    let info = PublicModelInfo::from(&q);
    let server = Server::start(
        q.clone(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            sessions_per_worker: 4,
            pool_depth: 0,
            deadlines: SessionDeadlines::uniform(Duration::from_secs(5)),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    let client = SecureClient::new(info.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
    let token: [u8; 16] = [0x5A; 16];
    let ours = SessionParams::for_model(&info, ExecConfig::new().variant, 1);

    // Attempt 1: run through the offline phase, then cut the connection
    // while the server's driver is parked awaiting the first online frame.
    let checkpoint = {
        let mut ch = TcpTransport::connect(addr).expect("connect");
        ch.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let reply = handshake_client_ext(
            &mut ch,
            ours,
            &token,
            HelloRequest { resume: false, bundle: false, silent: false },
        )
        .expect("handshake");
        assert!(!reply.resume && !reply.bundle);
        let session = ClientSession::setup(&mut ch, &mut rng).expect("setup");
        let state = client.offline_with(&mut ch, session, 1, &mut rng).expect("offline");
        // Flush the coalesced tail of the offline exchange so the server
        // finishes its offline phase and parks at the first online recv;
        // TCP orders the data ahead of the EOF from the drop below.
        ch.flush().expect("flush");
        state.to_bundle()
        // `ch` drops here: mid-session cut.
    };

    // The parked driver observes the cut, fails retryably, and parks its
    // connection-independent state in the sharded checkpoint store.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !server.checkpoint_store().contains(&token) {
        assert!(Instant::now() < deadline, "server never checkpointed the cut session");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.metrics().failed, 1, "the cut session must count as failed");

    // Attempt 2: reconnect with the same token and resume.
    let mut ch = TcpTransport::connect(addr).expect("reconnect");
    ch.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let reply = handshake_client_ext(
        &mut ch,
        ours,
        &token,
        HelloRequest { resume: true, bundle: false, silent: false },
    )
    .expect("resume handshake");
    assert!(reply.resume, "server must offer to resume the checkpointed session");
    let session = ClientSession::setup(&mut ch, &mut rng).expect("setup");
    let state = ClientOffline::from_bundle(session, checkpoint);
    let y = client.online_raw(&mut ch, state, std::slice::from_ref(&x), &mut rng).expect("online");
    assert_eq!(y.col(0), expected, "resumed logits diverge from forward_exact");
}

/// Delay faults on the client side stall individual frames while the
/// server's driver sits suspended in the event loop. As long as every
/// stall stays under the read timeout, the dribbling session must
/// complete bit-exact — repeated park/resume cycles may not perturb the
/// protocol stream.
#[test]
fn event_loop_rides_out_delayed_frames_while_parked() {
    let q = tiny_model();
    let x: Vec<u64> = vec![9, 200, 31, 4, 1 << 9, 55, 6, 77, 801, 12];
    let expected = q.forward_exact(&x);
    let info = PublicModelInfo::from(&q);
    let server = Server::start(
        q.clone(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            sessions_per_worker: 2,
            pool_depth: 0,
            deadlines: SessionDeadlines::uniform(Duration::from_secs(5)),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    let client = SecureClient::new(info.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(4711);
    let token: [u8; 16] = [0x77; 16];
    let ours = SessionParams::for_model(&info, ExecConfig::new().variant, 1);

    // Stall a spread of frames in both directions: the hello (driver parks
    // before any protocol state), mid-setup, and deep in the offline phase.
    let plan = FaultPlan::of(vec![
        Fault::DelaySend { index: 0, millis: 200 },
        Fault::DelaySend { index: 2, millis: 150 },
        Fault::DelaySend { index: 5, millis: 150 },
        Fault::DelayRecv { index: 3, millis: 150 },
    ]);
    let mut ch = FaultyTransport::with_plan(TcpTransport::connect(addr).expect("connect"), plan);
    ch.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let reply = handshake_client_ext(
        &mut ch,
        ours,
        &token,
        HelloRequest { resume: false, bundle: false, silent: false },
    )
    .expect("handshake");
    assert!(!reply.resume && !reply.bundle);
    let session = ClientSession::setup(&mut ch, &mut rng).expect("setup");
    let state = client.offline_with(&mut ch, session, 1, &mut rng).expect("offline");
    let y = client.online_raw(&mut ch, state, std::slice::from_ref(&x), &mut rng).expect("online");
    assert_eq!(y.col(0), expected, "delayed session diverges from forward_exact");

    // Bookkeeping settles after the client's last recv; wait briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().completed < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let m = server.metrics();
    assert_eq!(m.completed, 1);
    assert_eq!(m.failed, 0, "delays under the read timeout must not fail the session");
}

/// The same contract under a latency-bearing network model: virtual-clock
/// phase budgets interact with simulated latency rather than wall time.
#[test]
fn chaos_smoke_on_lan_model() {
    let q = tiny_model();
    let inputs: Vec<Vec<u64>> = vec![vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]];
    let expected = q.forward_exact(&inputs[0]);

    for seed in 0..4u64 {
        let deadlines = SessionDeadlines::uniform(Duration::from_secs(2));
        let (dialer, listener) = sim_link(NetworkModel::lan());
        let server = ResilientServer::new(SecureServer::new(q.clone()))
            .with_policy(RetryPolicy::no_delay(3))
            .with_deadlines(deadlines);
        let client = ResilientClient::new(SecureClient::new(PublicModelInfo::from(&q)))
            .with_policy(RetryPolicy::no_delay(3))
            .with_deadlines(deadlines);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 50);
                let _ = server.serve_one(
                    |attempt| {
                        listener
                            .accept_timeout(Duration::from_secs(2))
                            .map(|ep| FaultyTransport::with_plan(ep, plan_for(seed, attempt, 0)))
                    },
                    &mut rng,
                );
            });
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 60);
            if let Ok((y, _)) = client.run_raw(
                |attempt| {
                    dialer
                        .dial()
                        .map(|ep| FaultyTransport::with_plan(ep, plan_for(seed, attempt, 1)))
                },
                &inputs,
                &mut rng,
            ) {
                if !corruption_drawn(seed) {
                    assert_eq!(y.col(0), expected, "seed {seed} returned wrong logits");
                }
            }
        });
    }
}

/// A seeded slowloris — a peer dribbling one byte at a time, never
/// completing a frame — must be evicted by the governor's idle budget
/// while a warm sibling multiplexed on the *same worker* rides a pooled
/// bundle to bit-exact logits with zero offline-phase bytes. The
/// transport deadlines are deliberately generous: the eviction under test
/// is the multiplexing budget, not the blocking read timeout.
#[test]
fn governor_evicts_slowloris_while_warm_sibling_completes() {
    let q = tiny_model();
    let x: Vec<u64> = vec![700, 1 << 8, 3, 90, 0, 5, 2 << 7, 33, 12, 256];
    let expected = q.forward_exact(&x);
    let info = PublicModelInfo::from(&q);
    let server = Server::start(
        q.clone(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            sessions_per_worker: 2,
            pool_depth: 1,
            pool_batches: vec![1],
            deadlines: SessionDeadlines::uniform(Duration::from_secs(60)),
            governor: GovernorConfig {
                idle_timeout: Some(Duration::from_millis(300)),
                ..GovernorConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    assert!(server.warm_up(1, 1, Duration::from_secs(30)), "pool must warm");

    let server = &server;
    std::thread::scope(|scope| {
        // Slowloris: seeded dribble, one byte per 40 ms, never a complete
        // frame — `last_inbound` never advances, so the idle budget fires
        // however busily the bytes trickle.
        scope.spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0x510_1035);
            let mut sock = std::net::TcpStream::connect(addr).expect("slowloris connect");
            // A plausible hello-sized header so the dribble is not
            // rejected as malformed, then garbage it never finishes.
            let mut bytes = vec![57u8, 0, 0, 0];
            bytes.extend((0..24).map(|_| rng.gen::<u8>()));
            for b in bytes {
                if server.metrics().evicted >= 1 {
                    break;
                }
                if sock.write_all(&[b]).is_err() {
                    break; // evicted server-side: the socket is gone
                }
                std::thread::sleep(Duration::from_millis(40));
            }
        });

        // Wait until the slowloris occupies a session slot, then run a
        // real warm request on the same single worker.
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.metrics().active < 1 {
            assert!(Instant::now() < deadline, "slowloris never admitted");
            std::thread::sleep(Duration::from_millis(2));
        }
        let client = ServeClient::new(info.clone())
            .with_deadlines(SessionDeadlines::uniform(Duration::from_secs(60)));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x51B_1146);
        let (y, report) =
            client.run(addr, std::slice::from_ref(&x), &mut rng).expect("warm sibling");
        assert_eq!(y.col(0), expected, "sibling logits diverge");
        assert!(report.warm, "sibling must ride the pooled bundle");
        assert_eq!(
            report.phase("offline").total_bytes(),
            0,
            "warm sibling must move zero offline-phase bytes"
        );

        // The governor must reclaim the slot within its budget.
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.metrics().evicted < 1 {
            assert!(Instant::now() < deadline, "slowloris never evicted");
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    let m = server.metrics();
    assert!(m.evicted >= 1, "idle budget must evict the slowloris");
    assert_eq!(m.panicked, 0);
    let prom = m.render_prometheus();
    assert!(prom.contains("abnn2_serve_sessions_evicted_total"), "eviction family must render");
}

/// A peer that completes the handshake and base-OT setup, then never
/// drains its socket while the server pushes the offline phase, must be
/// evicted by the governor's outbound-queue byte cap — the frame buffer
/// must not absorb the whole offline phase for a dead reader. The model
/// is sized so the server's offline send volume dwarfs anything the
/// kernel's socket buffers can hide.
#[test]
fn governor_evicts_never_draining_reader_on_outbound_cap() {
    let net = Network::new(&[1024, 256, 4], 777);
    let q = QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        },
    );
    let info = PublicModelInfo::from(&q);
    let server = Server::start(
        q,
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            sessions_per_worker: 2,
            pool_depth: 0,
            deadlines: SessionDeadlines::uniform(Duration::from_secs(60)),
            governor: GovernorConfig {
                max_outbound_bytes: Some(64 * 1024),
                ..GovernorConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("start server");

    // Handshake + setup, then go silent: the server's driver queues the
    // offline OT-extension columns, the socket stops draining, and the
    // frame buffer's backlog crosses the cap.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDEAD_BEEF);
    let token: [u8; 16] = [0x44; 16];
    let ours = SessionParams::for_model(&info, ExecConfig::new().variant, 1);
    let ch = {
        let mut ch = TcpTransport::connect(server.addr()).expect("connect");
        ch.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
        let reply = handshake_client_ext(
            &mut ch,
            ours,
            &token,
            HelloRequest { resume: false, bundle: false, silent: false },
        )
        .expect("handshake");
        assert!(!reply.resume && !reply.bundle);
        let _session = ClientSession::setup(&mut ch, &mut rng).expect("setup");
        ch // hold the connection open, never read again
    };

    let deadline = Instant::now() + Duration::from_secs(30);
    while server.metrics().evicted < 1 {
        assert!(
            Instant::now() < deadline,
            "server never evicted the non-draining peer: {:?}",
            server.metrics()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(ch);
    let m = server.metrics();
    assert!(m.evicted >= 1, "outbound cap must evict the dead reader");
    assert_eq!(m.completed, 0);
    assert_eq!(m.panicked, 0);
}

/// A session that panics mid-online must be quarantined: its worker and
/// the sibling sessions multiplexed on it keep running, the poisoned
/// checkpoint is discarded, and every client — including the one whose
/// session was killed, via its resilient retry — still ends bit-exact.
/// No worker respawn may occur: quarantine is per-session.
#[test]
fn mid_online_panic_quarantines_session_but_siblings_finish_bit_exact() {
    let q = tiny_model();
    let info = PublicModelInfo::from(&q);
    let server = Server::start(
        q.clone(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            sessions_per_worker: 4,
            queue_capacity: 8,
            pool_depth: 0,
            deadlines: SessionDeadlines::uniform(Duration::from_secs(30)),
            governor: GovernorConfig {
                // The second admitted session dies at the top of its first
                // online-phase sweep.
                inject_panic_session: Some(1),
                ..GovernorConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();

    let exact: usize = std::thread::scope(|scope| {
        (0..3u64)
            .map(|c| {
                let client = ServeClient::new(info.clone())
                    .with_bundles(false)
                    .with_deadlines(SessionDeadlines::uniform(Duration::from_secs(30)))
                    .with_policy(RetryPolicy::no_delay(3));
                let q = &q;
                scope.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(9_000 + c);
                    let input: Vec<u64> = (0..10).map(|j| (c * 31 + j * 7) & 0xFFFF).collect();
                    let expected = q.forward_exact(&input);
                    let (y, _report) = client
                        .run(addr, std::slice::from_ref(&input), &mut rng)
                        .expect("client must survive the injected panic via retry");
                    assert_eq!(y.col(0), expected, "client {c}: logits diverge");
                    1usize
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    });
    assert_eq!(exact, 3, "every client must end bit-exact");

    // Settle the worker-side bookkeeping, then pin the quarantine story:
    // exactly one panic, zero worker deaths, and the victim's retry
    // reconnected fresh (its checkpoint was discarded as poisoned).
    let deadline = Instant::now() + Duration::from_secs(5);
    while (server.metrics().completed < 3 || server.metrics().active > 0)
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    let m = server.metrics();
    assert_eq!(m.panicked, 1, "exactly the injected session may panic");
    assert_eq!(m.worker_respawns, 0, "quarantine must not cost a worker");
    assert_eq!(m.completed, 3);
    assert_eq!(m.failed, 1, "the quarantined session counts as failed");
    assert_eq!(m.active, 0, "the worker must still be sweeping, not wedged");
    let prom = m.render_prometheus();
    assert!(prom.contains("abnn2_serve_sessions_panicked_total 1"), "panic family must render");
    assert!(prom.contains("abnn2_serve_sessions_evicted_total 0"), "eviction family must render");
}

/// A silent session cut after its offline phase — the LPN expansion has
/// run, the client parked its state — must checkpoint server-side like an
/// IKNP session does, and a reconnect **renegotiating silent** must
/// resume to bit-exact logits. The resumed setup re-runs the base-OT
/// bootstrap in the negotiated mode on both sides, so the replayed
/// driver's transcript stays aligned.
#[test]
fn silent_cut_after_expansion_checkpoints_and_resumes_bit_exact() {
    let q = tiny_model();
    let x: Vec<u64> = vec![700, 1 << 8, 3, 90, 0, 5, 2 << 7, 33, 12, 256];
    let expected = q.forward_exact(&x);
    let info = PublicModelInfo::from(&q);
    let server = Server::start(
        q.clone(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            sessions_per_worker: 4,
            pool_depth: 0,
            deadlines: SessionDeadlines::uniform(Duration::from_secs(5)),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    let client = SecureClient::new(info.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(41337);
    let token: [u8; 16] = [0xA5; 16];
    let ours = SessionParams::for_model(&info, ExecConfig::new().variant, 1);

    // Attempt 1: negotiate silent, run the offline phase (base-OT
    // bootstrap + SPCOT/LPN expansion), then cut while the server's
    // driver is parked at the first online frame.
    let checkpoint = {
        let mut ch = TcpTransport::connect(addr).expect("connect");
        ch.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let reply = handshake_client_ext(
            &mut ch,
            ours,
            &token,
            HelloRequest { resume: false, bundle: false, silent: true },
        )
        .expect("handshake");
        assert!(reply.silent, "server must grant silent capability");
        let session = ClientSession::setup_with(&mut ch, reply.mode(), &mut rng).expect("setup");
        let state = client.offline_with(&mut ch, session, 1, &mut rng).expect("offline");
        ch.flush().expect("flush");
        state.to_bundle()
        // `ch` drops here: mid-session cut.
    };

    let deadline = Instant::now() + Duration::from_secs(10);
    while !server.checkpoint_store().contains(&token) {
        assert!(Instant::now() < deadline, "server never checkpointed the cut silent session");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Attempt 2: reconnect, renegotiate silent, resume.
    let mut ch = TcpTransport::connect(addr).expect("reconnect");
    ch.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let reply = handshake_client_ext(
        &mut ch,
        ours,
        &token,
        HelloRequest { resume: true, bundle: false, silent: true },
    )
    .expect("resume handshake");
    assert!(reply.resume, "server must offer to resume the checkpointed session");
    assert!(reply.silent, "resumed session must stay on the silent backend");
    let session = ClientSession::setup_with(&mut ch, reply.mode(), &mut rng).expect("setup");
    let state = ClientOffline::from_bundle(session, checkpoint);
    let y = client.online_raw(&mut ch, state, std::slice::from_ref(&x), &mut rng).expect("online");
    assert_eq!(y.col(0), expected, "resumed silent logits diverge from forward_exact");
}

/// A tiny but complete transformer encoder for the extended-op chaos
/// suite: every new frame kind (matrix-triple Gilboa traffic, matmul
/// openings, softmax/GELU/layer-norm GC exchanges) is on the session's
/// wire path.
fn tiny_chaos_transformer() -> (QuantizedTransformer, Vec<u64>) {
    let config = QuantConfig {
        ring: Ring::new(16),
        frac_bits: 6,
        weight_frac_bits: 2,
        scheme: FragmentScheme::optimal(2),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7F0);
    let model = QuantizedTransformer::random(4, 4, 8, 3, config, &mut rng).expect("transformer");
    let x: Vec<u64> = (0..model.seq * model.d)
        .map(|_| model.config.ring.reduce(rng.gen_range(-64i64..64) as u64))
        .collect();
    (model, x)
}

/// Runs one interactive transformer session with an optional flipped tag
/// on one side, returning both parties' send counts and outcomes.
#[allow(clippy::type_complexity)]
fn transformer_trial(
    model: &QuantizedTransformer,
    x: &[u64],
    flip: Option<(u64, u64)>,
    seed: u64,
) -> ((u64, u64), Result<(), ProtocolError>, Result<abnn2::math::Matrix, ProtocolError>) {
    let (a, b) = Endpoint::pair(NetworkModel::instant());
    let fault = |s: u64| match flip {
        Some((side, index)) if side == s => Fault::FlipTag { index },
        _ => Fault::None,
    };
    let mut sch = FaultyTransport::new(a, fault(0));
    let mut cch = FaultyTransport::new(b, fault(1));
    let server = SecureServer::for_model(model.clone());
    let client = SecureClient::for_model(PublicTransformerInfo::from(model));
    let input = x.to_vec();
    std::thread::scope(|scope| {
        let srv = scope.spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 9);
            let res = server.run(&mut sch, 1, &mut rng);
            (res, sch.sends())
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 77);
        let cres = client.offline(&mut cch, 1, &mut rng).and_then(|state| {
            client.online_raw(&mut cch, state, std::slice::from_ref(&input), &mut rng)
        });
        let csends = cch.sends();
        // Close the client's endpoint before joining (see `flip_sweep`).
        drop(cch);
        let (sres, ssends) = srv.join().expect("server thread must not panic");
        ((ssends, csends), sres, cres)
    })
}

/// The tag-flip guarantee extends to every frame kind the op-pipeline
/// generalization added: a clean probe run measures each side's send
/// count, then the sweep flips a strided sample of indices across the
/// whole session — Gilboa matrix-triple traffic in the offline phase —
/// plus the final stretch exhaustively, which covers both
/// `MATMUL_OPENINGS` exchanges and the softmax/GELU/layer-norm GC frames
/// at the session's tail. Every landed flip must die as a typed error
/// naming a frame, never a hang, panic, or wrong logits.
#[test]
fn transformer_tag_flip_sweep_names_the_expected_frame() {
    let (model, x) = tiny_chaos_transformer();
    let expected = model.forward_exact(&x);

    let (sends, sres, cres) = transformer_trial(&model, &x, None, 0xC1EA);
    sres.expect("clean probe: server");
    let y = cres.expect("clean probe: client");
    assert_eq!(y.col(0), expected, "clean probe diverges from forward_exact");

    let names_frame = |e: &ProtocolError| e.to_string().contains("frame tag");
    for side in 0..2u64 {
        let total = if side == 0 { sends.0 } else { sends.1 };
        assert!(total > 8, "side {side}: probe counted only {total} sends");
        let stride = (total / 10).max(1);
        let indices: std::collections::BTreeSet<u64> =
            (0..total).step_by(stride as usize).chain(total.saturating_sub(4)..total).collect();
        for index in indices {
            let (_, sres, cres) = transformer_trial(&model, &x, Some((side, index)), index + 31);
            match (&sres, &cres) {
                (Ok(()), Ok(y)) => {
                    // Send counts vary slightly with RNG-dependent GC
                    // sizes; a flip past this run's end is a clean run.
                    assert_eq!(y.col(0), expected, "side {side} index {index}: wrong logits");
                }
                _ => {
                    let named = sres.as_ref().err().is_some_and(names_frame)
                        || cres.as_ref().err().is_some_and(names_frame);
                    assert!(
                        named,
                        "side {side} index {index}: no typed frame-tag error \
                         (server: {sres:?}, client: {cres:?})"
                    );
                }
            }
        }
    }
}

/// A client cut **during the secret×secret matmul opening** — the first
/// online `MATMUL_OPENINGS` frame dies on the wire — must leave the
/// serving frontend with a parked matrix-triple checkpoint, and a
/// reconnect with the same token must replay the online phase from that
/// checkpoint to logits bit-identical to the plaintext oracle. Matrix
/// triples survive the cut exactly like scalar triplets and masks do.
#[test]
fn cut_during_matmul_opening_checkpoints_and_resumes_bit_exact() {
    let (model, x) = tiny_chaos_transformer();
    let expected = model.forward_exact(&x);
    let info = PublicTransformerInfo::from(&model);
    let server = Server::start(
        model.clone(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            sessions_per_worker: 4,
            pool_depth: 0,
            deadlines: SessionDeadlines::uniform(Duration::from_secs(5)),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();
    let client = SecureClient::for_model(info.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xAB1E);
    let token: [u8; 16] = [0x3C; 16];
    let ours = SessionParams::for_graph(&model.graph().clone(), ExecConfig::new().variant, 1);

    // Attempt 1: interactive offline (matrix triples included), then start
    // the online phase and cut on the client's second online send — the
    // blinded input goes through, the QKᵀ opening frame does not.
    let checkpoint = {
        let mut ch = TcpTransport::connect(addr).expect("connect");
        ch.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let reply = handshake_client_ext(
            &mut ch,
            ours,
            &token,
            HelloRequest { resume: false, bundle: false, silent: false },
        )
        .expect("handshake");
        assert!(!reply.resume && !reply.bundle);
        let session = ClientSession::setup(&mut ch, &mut rng).expect("setup");
        let state = client.offline_with(&mut ch, session, 1, &mut rng).expect("offline");
        let checkpoint = state.to_bundle();
        let mut fch = FaultyTransport::new(ch, Fault::CutAfterMessages(1));
        client
            .online_raw(&mut fch, state, std::slice::from_ref(&x), &mut rng)
            .expect_err("the cut opening must abort the online attempt");
        checkpoint
        // `fch` drops here: the server sees the disconnection.
    };

    let deadline = Instant::now() + Duration::from_secs(10);
    while !server.checkpoint_store().contains(&token) {
        assert!(Instant::now() < deadline, "server never checkpointed the cut session");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Attempt 2: reconnect with the same token and replay the online
    // phase from the checkpointed masks and matrix triples.
    let mut ch = TcpTransport::connect(addr).expect("reconnect");
    ch.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let reply = handshake_client_ext(
        &mut ch,
        ours,
        &token,
        HelloRequest { resume: true, bundle: false, silent: false },
    )
    .expect("resume handshake");
    assert!(reply.resume, "server must offer to resume the checkpointed session");
    let session = ClientSession::setup(&mut ch, &mut rng).expect("setup");
    let state = ClientOffline::from_bundle(session, checkpoint);
    let y = client.online_raw(&mut ch, state, std::slice::from_ref(&x), &mut rng).expect("online");
    assert_eq!(y.col(0), expected, "resumed transformer logits diverge from forward_exact");
}

/// A mixed fleet on one server: silent-capable and legacy IKNP clients
/// interleaved against the same event-loop workers, every session cold
/// (no pool), every answer bit-exact. Capability is per-connection — one
/// client's mode may not leak into a sibling session multiplexed on the
/// same worker.
#[test]
fn mixed_fleet_silent_and_iknp_clients_one_server() {
    let q = tiny_model();
    let info = PublicModelInfo::from(&q);
    let server = Server::start(
        q.clone(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            sessions_per_worker: 3,
            queue_capacity: 8,
            pool_depth: 0,
            deadlines: SessionDeadlines::uniform(Duration::from_secs(30)),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();

    let exact: usize = std::thread::scope(|scope| {
        (0..6u64)
            .map(|c| {
                let silent = c % 2 == 0;
                let client = ServeClient::new(info.clone())
                    .with_bundles(false)
                    .with_silent(silent)
                    .with_deadlines(SessionDeadlines::uniform(Duration::from_secs(30)))
                    .with_policy(RetryPolicy::no_delay(3));
                let q = &q;
                scope.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(17_000 + c);
                    let input: Vec<u64> = (0..10).map(|j| (c * 37 + j * 11) & 0xFFFF).collect();
                    let expected = q.forward_exact(&input);
                    let (y, _report) = client
                        .run(addr, std::slice::from_ref(&input), &mut rng)
                        .expect("mixed-fleet client");
                    assert_eq!(y.col(0), expected, "client {c} (silent={silent}): logits diverge");
                    1usize
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    });
    assert_eq!(exact, 6, "every client in the mixed fleet must end bit-exact");
    let m = server.metrics();
    assert_eq!(m.panicked, 0);
    assert_eq!(m.failed, 0, "no mixed-fleet session may fail: {m:?}");
}
