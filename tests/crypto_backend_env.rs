//! The `ABNN2_CRYPTO_BACKEND` override knob.
//!
//! The process-wide backend is resolved once, on the first `backend()`
//! call, from this environment variable (falling back to CPU detection).
//! This file is its own integration-test binary — hence its own process —
//! so the single test below can set the variable *before* anything
//! touches the `OnceLock` and observe the forced choice end to end. It
//! deliberately contains exactly one `#[test]`: a sibling test running
//! first on another thread could resolve the backend early and turn the
//! override into a no-op.

use abnn2::crypto::{backend, Aes128, Block, RoHash};

#[test]
fn env_knob_forces_the_portable_backend() {
    std::env::set_var("ABNN2_CRYPTO_BACKEND", "portable");
    assert_eq!(
        backend().name(),
        "portable",
        "ABNN2_CRYPTO_BACKEND=portable must win over CPU detection"
    );

    // The forced backend must produce the canonical outputs: batched ops
    // agree with the scalar T-table oracle, so a session pinned to the
    // fallback path emits the same transcript bytes as any other.
    let aes = Aes128::new(Block::from(0xA5A5u128));
    let inputs: Vec<Block> = (0..37u128).map(|i| Block::from(i * i + 1)).collect();
    let mut batch = inputs.clone();
    backend().aes_encrypt_blocks(&aes, &mut batch);
    for (x, y) in inputs.iter().zip(&batch) {
        assert_eq!(*y, aes.encrypt_block(*x));
    }

    let hash = RoHash::new();
    let mut sigmas = inputs.clone();
    hash.hash_blocks(&mut sigmas);
    for (x, y) in inputs.iter().zip(&sigmas) {
        assert_eq!(*y, hash.hash_block(0, *x));
    }
}
