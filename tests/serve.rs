//! Serving-layer integration tests: many concurrent TCP clients must get
//! bit-identical logits, warm (pooled-bundle) requests must move zero
//! offline-phase bytes, admission control must reject with a typed error
//! — never a hang — and duplicate resume tokens must never share offline
//! state across sessions.

use abnn2::core::bundle::{dealer_bundle, ClientBundle};
use abnn2::core::cnn::PublicCnnInfo;
use abnn2::core::handshake::{handshake_client_ext, HelloRequest, SessionParams};
use abnn2::core::inference::ClientOffline;
use abnn2::core::session::ClientSession;
use abnn2::core::{ExecConfig, ProtocolError, PublicModelInfo, SecureClient, SessionDeadlines};
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{RetryPolicy, TcpTransport, Transport};
use abnn2::nn::quant::{QuantConfig, QuantizedDense, QuantizedNetwork};
use abnn2::nn::{ConvShape, Network, QuantizedCnn, QuantizedConv};
use abnn2::serve::{ServeClient, ServeConfig, Server};
use rand::{Rng, SeedableRng};
use std::net::TcpStream;
use std::time::{Duration, Instant};

// Two hidden layers → several online messages, so resume and drain tests
// have protocol structure to land in; small dims keep OT costs low.
fn tiny_model(seed: u64) -> QuantizedNetwork {
    let net = Network::new(&[12, 8, 6, 4], seed);
    QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        },
    )
}

fn sample_input(dim: usize, seed: u64) -> Vec<u64> {
    // Arbitrary ring-encoded fixed-point input; exactness is judged
    // against forward_exact on the same values.
    (0..dim).map(|j| (seed.wrapping_mul(31).wrapping_add(j as u64 * 7)) & 0xFFFF).collect()
}

fn fast_deadlines() -> SessionDeadlines {
    SessionDeadlines::uniform(Duration::from_secs(5))
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn eight_concurrent_clients_get_bit_identical_logits() {
    let q = tiny_model(200);
    let expected_for = |x: &Vec<u64>| q.forward_exact(x);
    let info = PublicModelInfo::from(&q);
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 16,
        pool_depth: 4,
        deadlines: fast_deadlines(),
        ..ServeConfig::default()
    };
    let server = Server::start(q.clone(), "127.0.0.1:0", config).expect("start server");
    let addr = server.addr();

    let inputs: Vec<Vec<u64>> = (0..8).map(|i| sample_input(12, 1000 + i)).collect();
    let results: Vec<(Vec<u64>, Vec<u64>)> = std::thread::scope(|scope| {
        inputs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let client = ServeClient::new(info.clone()).with_deadlines(fast_deadlines());
                let x = x.clone();
                scope.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(300 + i as u64);
                    let (y, _report) =
                        client.run(addr, std::slice::from_ref(&x), &mut rng).expect("request");
                    (x, y.col(0))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (x, y) in &results {
        assert_eq!(y, &expected_for(x), "served logits must equal forward_exact");
    }

    // Clients return on their last recv; the worker's bookkeeping
    // (completed/active) lands a beat later.
    wait_until("all sessions to finish server-side", || server.metrics().completed == 8);
    let metrics = server.metrics();
    assert_eq!(metrics.failed, 0);
    assert_eq!(metrics.active, 0);
    assert!(metrics.accepted >= 8);
}

#[test]
fn warm_pool_skips_offline_phase_entirely() {
    let q = tiny_model(210);
    let x = sample_input(12, 211);
    let expected = q.forward_exact(&x);
    let info = PublicModelInfo::from(&q);
    let config = ServeConfig {
        workers: 2,
        pool_depth: 2,
        deadlines: fast_deadlines(),
        ..ServeConfig::default()
    };
    let server = Server::start(q, "127.0.0.1:0", config).expect("start server");
    assert!(
        server.warm_up(1, 1, Duration::from_secs(30)),
        "pool must produce a bundle for batch 1"
    );

    // Warm request: zero offline-phase bytes, nonzero bundle-phase bytes.
    let client = ServeClient::new(info.clone()).with_deadlines(fast_deadlines());
    let mut rng = rand::rngs::StdRng::seed_from_u64(212);
    let (y, report) =
        client.run(server.addr(), std::slice::from_ref(&x), &mut rng).expect("warm request");
    assert_eq!(y.col(0), expected);
    assert!(report.warm, "pool was warmed, request must ride a bundle");
    assert!(!report.resumed);
    assert_eq!(
        report.phase("offline").total_bytes(),
        0,
        "warm path must move zero offline-phase bytes, got {:?}",
        report.phase("offline")
    );
    assert!(report.phase("bundle").bytes_received > 0, "client must receive its bundle half");
    assert!(report.phase("online").total_bytes() > 0);

    // Cold request (bundles declined): the interactive offline phase runs
    // and dwarfs the warm path's bundle transfer.
    let cold_client = ServeClient::new(info).with_deadlines(fast_deadlines()).with_bundles(false);
    let (y2, cold) = cold_client.run(server.addr(), &[x], &mut rng).expect("cold request");
    assert_eq!(y2.col(0), expected, "cold and warm paths must agree bit-for-bit");
    assert!(!cold.warm);
    assert!(cold.phase("offline").total_bytes() > 0);
    assert_eq!(cold.phase("bundle").total_bytes(), 0);
    assert!(
        cold.phase("offline").total_bytes() > report.phase("bundle").total_bytes(),
        "interactive offline ({} B) should cost more than a bundle handoff ({} B)",
        cold.phase("offline").total_bytes(),
        report.phase("bundle").total_bytes()
    );

    // Server-side mirror of the same accounting.
    let metrics = server.metrics();
    assert!(metrics.pool.hits >= 1, "pool must record the warm hit");
    assert_eq!(metrics.phase("offline").total_bytes(), cold.phase("offline").total_bytes());
    assert_eq!(metrics.phase("bundle").total_bytes(), report.phase("bundle").total_bytes());
}

/// A small conv→pool→dense CNN: conv out 2×4×4 → pool 2 → 2×2×2 = 8 →
/// dense 8→5→3.
fn tiny_cnn(seed: u64) -> QuantizedCnn {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let scheme = FragmentScheme::signed_bit_fields(&[2, 2]);
    let (lo, hi) = scheme.weight_range();
    let in_shape = ConvShape { channels: 1, height: 6, width: 6 };
    let conv = QuantizedConv {
        out_channels: 2,
        in_shape,
        kh: 3,
        kw: 3,
        stride: 1,
        weights: (0..2 * 9).map(|_| rng.gen_range(lo..=hi)).collect(),
        bias: vec![7, 2],
    };
    let mk_dense = |out_dim: usize, in_dim: usize, rng: &mut rand::rngs::StdRng| QuantizedDense {
        out_dim,
        in_dim,
        weights: (0..out_dim * in_dim).map(|_| rng.gen_range(lo..=hi)).collect(),
        bias: (0..out_dim as u64).collect(),
    };
    let d1 = mk_dense(5, 8, &mut rng);
    let d2 = mk_dense(3, 5, &mut rng);
    QuantizedCnn {
        config: QuantConfig { ring: Ring::new(32), frac_bits: 6, weight_frac_bits: 3, scheme },
        conv,
        pool_window: 2,
        dense: vec![d1, d2],
    }
}

/// A CNN rides the same pool: the dealer thread manufactures graph-keyed
/// conv bundles, and a warm request skips the interactive offline phase
/// entirely — new in the graph-executor refactor.
#[test]
fn warm_pool_serves_cnn_with_zero_offline_bytes() {
    let cnn = tiny_cnn(260);
    let ring = cnn.config.ring;
    let mut rng = rand::rngs::StdRng::seed_from_u64(261);
    let image: Vec<u64> = (0..cnn.conv.in_shape.len())
        .map(|_| ring.reduce(rng.gen_range(0..1u64 << cnn.config.frac_bits)))
        .collect();
    let expected = cnn.forward_exact(&image);
    let config = ServeConfig {
        workers: 2,
        pool_depth: 2,
        pool_batches: vec![1],
        deadlines: fast_deadlines(),
        ..ServeConfig::default()
    };
    let server = Server::start(cnn.clone(), "127.0.0.1:0", config).expect("start server");
    assert!(
        server.warm_up(1, 1, Duration::from_secs(30)),
        "pool must produce a CNN bundle for batch 1"
    );

    let client = ServeClient::for_model(PublicCnnInfo::from(&cnn)).with_deadlines(fast_deadlines());
    let (y, report) =
        client.run(server.addr(), std::slice::from_ref(&image), &mut rng).expect("warm request");
    assert_eq!(y.col(0), expected, "served CNN logits must equal forward_exact");
    assert!(report.warm, "pool was warmed, request must ride a bundle");
    assert_eq!(
        report.phase("offline").total_bytes(),
        0,
        "warm CNN path must move zero offline-phase bytes, got {:?}",
        report.phase("offline")
    );
    assert!(report.phase("bundle").bytes_received > 0, "client must receive its bundle half");
    assert!(report.phase("online").total_bytes() > 0);
    assert!(server.metrics().pool.hits >= 1, "pool must record the warm hit");
}

#[test]
fn overloaded_server_rejects_with_typed_error() {
    let q = tiny_model(220);
    let info = PublicModelInfo::from(&q);
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        pool_depth: 0, // no warm path; the stalls hold the worker
        deadlines: fast_deadlines(),
        ..ServeConfig::default()
    };
    let server = Server::start(q, "127.0.0.1:0", config).expect("start server");
    let addr = server.addr();

    // Occupy the single worker and the single queue slot with connections
    // that never speak.
    let _stall_worker = TcpStream::connect(addr).expect("stall 1");
    wait_until("worker to pick up the first stall", || server.metrics().active >= 1);
    let _stall_queue = TcpStream::connect(addr).expect("stall 2");
    wait_until("second stall to be queued", || server.metrics().accepted >= 2);

    // A real client must now be refused in protocol, quickly and typed.
    let client = ServeClient::new(info)
        .with_deadlines(fast_deadlines())
        .with_policy(RetryPolicy::no_delay(1));
    let mut rng = rand::rngs::StdRng::seed_from_u64(221);
    let x = sample_input(12, 222);
    let start = Instant::now();
    let err = client.run(addr, &[x], &mut rng).unwrap_err();
    assert!(
        matches!(err, ProtocolError::Overloaded { retry_after_ms } if retry_after_ms >= 25),
        "busy rejection must carry a load-derived backoff hint, got {err:?}"
    );
    assert!(start.elapsed() < Duration::from_secs(5), "rejection must be prompt");
    assert!(server.metrics().rejected >= 1);
}

/// Satellite of the governor PR: the busy frame's `retry_after_ms` hint
/// must round-trip to the client, and a client with retries left must
/// honor it — sleeping between dials instead of hot-looping against a
/// full queue.
#[test]
fn client_honors_retry_after_hint_instead_of_hot_looping() {
    let q = tiny_model(225);
    let info = PublicModelInfo::from(&q);
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        pool_depth: 0,
        deadlines: fast_deadlines(),
        ..ServeConfig::default()
    };
    let server = Server::start(q, "127.0.0.1:0", config).expect("start server");
    let addr = server.addr();

    // Hold the worker and the queue slot for the whole test, so every
    // admission attempt is shed with a hint.
    let _stall_worker = TcpStream::connect(addr).expect("stall 1");
    wait_until("worker to pick up the first stall", || server.metrics().active >= 1);
    let _stall_queue = TcpStream::connect(addr).expect("stall 2");
    wait_until("second stall to be queued", || server.metrics().accepted >= 2);

    // Zero client-side base delay: any spacing between dials comes from
    // the server's hint, not the policy.
    let client = ServeClient::new(info)
        .with_deadlines(fast_deadlines())
        .with_policy(RetryPolicy::no_delay(4));
    let mut rng = rand::rngs::StdRng::seed_from_u64(226);
    let x = sample_input(12, 227);
    let start = Instant::now();
    let err = client.run(addr, &[x], &mut rng).unwrap_err();
    let elapsed = start.elapsed();

    // active=1 + queued=1 + self → hint ≥ 75 ms per shed; three waits
    // precede the final (returned) rejection.
    assert!(
        matches!(err, ProtocolError::Overloaded { retry_after_ms } if retry_after_ms >= 75),
        "hint must survive the wire round-trip, got {err:?}"
    );
    assert!(
        elapsed >= Duration::from_millis(3 * 75),
        "client must sleep the hinted backoff between dials, only waited {elapsed:?}"
    );
    assert!(server.metrics().rejected >= 4, "all four admission attempts must be shed");
}

#[test]
fn graceful_drain_completes_in_flight_and_rejects_new() {
    let q = tiny_model(230);
    let x = sample_input(12, 231);
    let expected = q.forward_exact(&x);
    let info = PublicModelInfo::from(&q);
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 4,
        pool_depth: 0, // cold offline gives the in-flight session real duration
        deadlines: fast_deadlines(),
        ..ServeConfig::default()
    };
    let mut server = Server::start(q, "127.0.0.1:0", config).expect("start server");
    let addr = server.addr();

    let (in_flight, rejected_err) = std::thread::scope(|scope| {
        let in_flight_client = ServeClient::new(info.clone()).with_deadlines(fast_deadlines());
        let xa = x.clone();
        let in_flight = scope.spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(232);
            in_flight_client.run(addr, &[xa], &mut rng)
        });
        wait_until("the in-flight session to start", || {
            let m = server.metrics();
            m.active >= 1 || m.completed >= 1 // don't hang if it already finished
        });

        server.begin_drain();

        // New connections are now turned away in protocol.
        let late_client = ServeClient::new(info.clone())
            .with_deadlines(fast_deadlines())
            .with_policy(RetryPolicy::no_delay(1));
        let mut rng = rand::rngs::StdRng::seed_from_u64(233);
        let xb = x.clone();
        let rejected_err = late_client.run(addr, &[xb], &mut rng).unwrap_err();

        (in_flight.join().expect("in-flight thread"), rejected_err)
    });

    let (y, report) = in_flight.expect("in-flight session must complete through the drain");
    assert_eq!(y.col(0), expected, "drained-through session must stay bit-exact");
    assert_eq!(report.attempts, 1, "drain must not sever the in-flight session");
    assert!(
        matches!(rejected_err, ProtocolError::Overloaded { .. }),
        "drain rejection must stay typed, got {rejected_err:?}"
    );

    // Shutdown joins every thread: bounded, no hang.
    let start = Instant::now();
    server.shutdown();
    assert!(start.elapsed() < Duration::from_secs(10));
    let metrics = server.metrics();
    assert!(metrics.completed >= 1);
    assert!(metrics.rejected >= 1);
    assert_eq!(metrics.active, 0);
}

/// Drives one manual session that presents `token` with a resume request
/// and `bundle` as its local offline state, falling back to a fresh
/// offline phase when the server declines. Returns (logits, resumed).
fn manual_resume_request(
    addr: std::net::SocketAddr,
    info: &PublicModelInfo,
    token: [u8; 16],
    bundle: ClientBundle,
    x: &[u64],
    seed: u64,
) -> Result<(Vec<u64>, bool), ProtocolError> {
    let client = SecureClient::new(info.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut ch = TcpTransport::connect(addr)?;
    ch.set_read_timeout(Some(Duration::from_secs(5)))?;
    let ours = SessionParams::for_model(info, ExecConfig::new().variant, 1);
    let reply = handshake_client_ext(
        &mut ch,
        ours,
        &token,
        HelloRequest { resume: true, bundle: false, silent: false },
    )?;
    let session = ClientSession::setup(&mut ch, &mut rng)?;
    let state = if reply.resume {
        ClientOffline::from_bundle(session, bundle)
    } else {
        client.offline_with(&mut ch, session, 1, &mut rng)?
    };
    let y = client.online_raw(&mut ch, state, std::slice::from_ref(&x.to_vec()), &mut rng)?;
    Ok((y.col(0), reply.resume))
}

#[test]
fn duplicate_resume_tokens_never_share_offline_state() {
    let q = tiny_model(240);
    let x = sample_input(12, 241);
    let expected = q.forward_exact(&x);
    let info = PublicModelInfo::from(&q);
    let config = ServeConfig {
        workers: 2,
        pool_depth: 0,
        deadlines: fast_deadlines(),
        ..ServeConfig::default()
    };
    let server = Server::start(q.clone(), "127.0.0.1:0", config).expect("start server");

    // Plant one matched checkpoint pair under a known token, as if a
    // previous connection had died mid-online.
    let token = [0xAB; 16];
    let mut rng = rand::rngs::StdRng::seed_from_u64(242);
    let (sb, cb) = dealer_bundle(&q, 1, &mut rng);
    server.checkpoint_store().insert(token, sb);

    // Two concurrent connections present the same token with the same
    // client-side state. Claim-on-use must let at most one resume; the
    // other downgrades to a fresh offline phase. Both must end bit-exact.
    let outcomes: Vec<(Vec<u64>, bool)> = std::thread::scope(|scope| {
        [243u64, 244]
            .map(|seed| {
                let info = info.clone();
                let cb = cb.clone();
                let x = x.clone();
                let addr = server.addr();
                scope.spawn(move || {
                    manual_resume_request(addr, &info, token, cb, &x, seed)
                        .expect("duplicate-token session")
                })
            })
            .map(|h| h.join().expect("client thread"))
            .into_iter()
            .collect()
    });

    let resumed_count = outcomes.iter().filter(|(_, resumed)| *resumed).count();
    assert_eq!(resumed_count, 1, "exactly one duplicate may claim the checkpoint");
    for (y, _) in &outcomes {
        assert_eq!(y, &expected, "every duplicate must still get exact logits");
    }
}

#[test]
fn resume_against_evicted_checkpoint_downgrades_to_fresh() {
    let q = tiny_model(250);
    let x = sample_input(12, 251);
    let expected = q.forward_exact(&x);
    let info = PublicModelInfo::from(&q);
    let config = ServeConfig {
        workers: 1,
        pool_depth: 0,
        checkpoint_capacity: 1,
        deadlines: fast_deadlines(),
        ..ServeConfig::default()
    };
    let server = Server::start(q.clone(), "127.0.0.1:0", config).expect("start server");

    // Plant a checkpoint, then evict it through the capacity-1 store.
    let token = [0xCD; 16];
    let mut rng = rand::rngs::StdRng::seed_from_u64(252);
    let (sb, cb) = dealer_bundle(&q, 1, &mut rng);
    server.checkpoint_store().insert(token, sb);
    let (rogue_sb, _) = dealer_bundle(&q, 1, &mut rng);
    server.checkpoint_store().insert([0xEF; 16], rogue_sb);
    assert!(!server.checkpoint_store().contains(&token), "capacity 1 must evict");

    let (y, resumed) = manual_resume_request(server.addr(), &info, token, cb, &x, 253)
        .expect("evicted-token session");
    assert!(!resumed, "evicted checkpoint must downgrade, not resume");
    assert_eq!(y, expected, "downgraded session must still be bit-exact");
}
