//! Transformer inference over the generalized op pipeline: secret×secret
//! matmul (matrix Beaver triplets), softmax, GELU, and layer-norm served
//! end-to-end, checked bit-for-bit against the plaintext fixed-point
//! oracle across fragment bitwidths, and warm from the precompute pool
//! with zero offline-phase bytes.

use abnn2::core::inference::PublicTransformerInfo;
use abnn2::core::{SecureClient, SecureServer, SessionDeadlines};
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{run_pair, NetworkModel};
use abnn2::nn::quant::QuantConfig;
use abnn2::nn::transformer::QuantizedTransformer;
use abnn2::serve::{ServeClient, ServeConfig, Server};
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A small but complete encoder block: 4 tokens of width 4, feed-forward
/// width 8, 3 output classes — every extended op kind (two secret×secret
/// matmuls, softmax, GELU, two layer-norms) on the execution path.
fn tiny_transformer(eta: u32, seed: u64) -> QuantizedTransformer {
    let scheme = FragmentScheme::optimal(eta);
    let config = QuantConfig { ring: Ring::new(16), frac_bits: 6, weight_frac_bits: 2, scheme };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    QuantizedTransformer::random(4, 4, 8, 3, config, &mut rng).expect("valid transformer")
}

fn sample_tokens(model: &QuantizedTransformer, seed: u64) -> Vec<u64> {
    let ring = model.config.ring;
    let f = model.config.frac_bits;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Signed activations in roughly [-1, 1) at `f` fractional bits.
    (0..model.seq * model.d)
        .map(|_| ring.reduce((rng.gen_range(-(1i64 << f)..1i64 << f)) as u64))
        .collect()
}

fn fast_deadlines() -> SessionDeadlines {
    SessionDeadlines::uniform(Duration::from_secs(30))
}

/// The interactive path (Gilboa matrix-triple generation in the offline
/// phase, GC-lowered nonlinearities online) reproduces the plaintext
/// fixed-point oracle exactly, at every supported fragment bitwidth.
#[test]
fn transformer_logits_match_oracle_across_bitwidths() {
    for eta in [2u32, 3, 4, 8] {
        let model = tiny_transformer(eta, 300 + u64::from(eta));
        let x = sample_tokens(&model, 310 + u64::from(eta));
        let expected = model.forward_exact(&x);

        let server = SecureServer::for_model(model.clone());
        let client = SecureClient::for_model(PublicTransformerInfo::from(&model));
        let input = x.clone();
        let (_, y, _) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(320);
                server.run(ch, 1, &mut rng).expect("server");
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(321);
                let state = client.offline(ch, 1, &mut rng).expect("offline");
                client.online_raw(ch, state, &[input], &mut rng).expect("online")
            },
        );
        assert_eq!(y.col(0), expected, "eta {eta}: secure logits must equal forward_exact");
    }
}

/// A transformer rides the same precompute pool as MLPs and CNNs: the
/// dealer thread manufactures graph-keyed bundles whose matrix-triple
/// sections cover both secret×secret matmuls, and a warm request skips
/// the interactive offline phase entirely. The cold (bundle-declined)
/// path agrees bit-for-bit, proving dealer and Gilboa triples are
/// interchangeable.
#[test]
fn warm_pool_serves_transformer_with_zero_offline_bytes() {
    let model = tiny_transformer(3, 330);
    let x = sample_tokens(&model, 331);
    let expected = model.forward_exact(&x);
    let info = PublicTransformerInfo::from(&model);
    let config = ServeConfig {
        workers: 2,
        pool_depth: 2,
        pool_batches: vec![1],
        deadlines: fast_deadlines(),
        ..ServeConfig::default()
    };
    let server = Server::start(model, "127.0.0.1:0", config).expect("start server");
    assert!(
        server.warm_up(1, 1, Duration::from_secs(30)),
        "pool must produce a transformer bundle for batch 1"
    );

    let client = ServeClient::for_model(info.clone()).with_deadlines(fast_deadlines());
    let mut rng = rand::rngs::StdRng::seed_from_u64(332);
    let (y, report) =
        client.run(server.addr(), std::slice::from_ref(&x), &mut rng).expect("warm request");
    assert_eq!(y.col(0), expected, "served transformer logits must equal forward_exact");
    assert!(report.warm, "pool was warmed, request must ride a bundle");
    assert_eq!(
        report.phase("offline").total_bytes(),
        0,
        "warm transformer path must move zero offline-phase bytes, got {:?}",
        report.phase("offline")
    );
    assert!(report.phase("bundle").bytes_received > 0, "client must receive its bundle half");
    assert!(report.phase("online").total_bytes() > 0);
    assert!(server.metrics().pool.hits >= 1, "pool must record the warm hit");

    // Cold request: interactive matrix-triple generation, identical logits.
    let cold_client =
        ServeClient::for_model(info).with_deadlines(fast_deadlines()).with_bundles(false);
    let (y2, cold) = cold_client.run(server.addr(), &[x], &mut rng).expect("cold request");
    assert_eq!(y2.col(0), expected, "cold and warm paths must agree bit-for-bit");
    assert!(!cold.warm);
    assert!(cold.phase("offline").total_bytes() > 0);
}
