//! Golden-transcript pin for the parallel offline schedule.
//!
//! `ExecConfig::threads` may only change *local* compute — sharded PRG
//! expansion, bit-matrix transposes, batched MMO hashing, triplet mask
//! work. The frames a session emits, their order, and every payload byte
//! must be identical for any thread count. This suite records the exact
//! byte stream each party sends during a full session and asserts the
//! multi-threaded transcript equals the single-threaded one, for an MLP
//! (whose first layer is large enough to cross the internal 4096-OT
//! parallelism threshold, so the sharded KK13/IKNP paths really run) and
//! for a transformer graph (matrix-triple offline phase).

use abnn2::core::{ExecConfig, PublicModelInfo, PublicTransformerInfo, SecureClient, SecureServer};
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{CommSnapshot, Endpoint, NetworkModel, Transport, TransportError};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::transformer::QuantizedTransformer;
use abnn2::nn::Network;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Transport decorator that keeps a copy of every payload this party
/// sends, in order. Receives and all control calls forward untouched.
struct RecordingTransport<T> {
    inner: T,
    sent: Vec<Vec<u8>>,
}

impl<T: Transport> RecordingTransport<T> {
    fn new(inner: T) -> Self {
        RecordingTransport { inner, sent: Vec::new() }
    }
}

impl<T: Transport> Transport for RecordingTransport<T> {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.sent.push(payload.to_vec());
        self.inner.send(payload)
    }

    fn send_owned(&mut self, payload: Vec<u8>) -> Result<(), TransportError> {
        self.sent.push(payload.clone());
        self.inner.send_owned(payload)
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        self.inner.recv()
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        self.inner.flush()
    }

    fn snapshot(&self) -> CommSnapshot {
        self.inner.snapshot()
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_read_timeout(timeout)
    }

    fn set_phase_budget(&mut self, budget: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_phase_budget(budget)
    }

    fn mark_phase(&mut self, label: &str) {
        self.inner.mark_phase(label);
    }

    fn take_scratch(&mut self) -> Vec<u8> {
        self.inner.take_scratch()
    }

    fn store_scratch(&mut self, buf: Vec<u8>) {
        self.inner.store_scratch(buf);
    }
}

/// Asserts two recorded transcripts are byte-identical, frame by frame,
/// with a diagnostic naming the first diverging frame.
fn assert_transcripts_equal(party: &str, base: &[Vec<u8>], par: &[Vec<u8>]) {
    assert_eq!(base.len(), par.len(), "{party}: frame count changed under the parallel schedule");
    for (i, (a, b)) in base.iter().zip(par).enumerate() {
        assert_eq!(
            a,
            b,
            "{party}: frame {i} (tag {:#04x}) diverges between threads=1 and threads=4",
            a.first().copied().unwrap_or(0)
        );
    }
}

/// One full MLP session under `threads` workers; returns (server-sent,
/// client-sent) transcripts, asserting logits against the plaintext
/// oracle on the way. The 260→16 first layer yields 4160 fragment OTs
/// per group — past the 4096-OT threshold, so the sharded PRG/transpose/
/// hash paths execute when `threads > 1`.
fn mlp_transcripts(threads: usize) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let net = Network::new(&[260, 16, 4], 0x51);
    let config = QuantConfig {
        ring: Ring::new(32),
        frac_bits: 8,
        weight_frac_bits: 2,
        scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
    };
    let q = QuantizedNetwork::quantize(&net, config);
    let ring = q.config.ring;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x52);
    let input: Vec<u64> = (0..260).map(|_| ring.reduce(rng.gen_range(0..1u64 << 10))).collect();
    let expected = q.forward_exact(&input);

    let exec = ExecConfig::new().with_threads(threads);
    let client = SecureClient::new(PublicModelInfo::from(&q)).with_exec(exec);
    let server = SecureServer::new(q).with_exec(exec);
    let (server_ep, client_ep) = Endpoint::pair(NetworkModel::instant());
    let mut sch = RecordingTransport::new(server_ep);
    let mut cch = RecordingTransport::new(client_ep);
    let server_sent = std::thread::scope(|scope| {
        let handle = scope.spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0x53);
            server.run(&mut sch, 1, &mut rng).expect("server");
            sch.sent
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x54);
        let state = client.offline(&mut cch, 1, &mut rng).expect("offline");
        let y = client
            .online_raw(&mut cch, state, std::slice::from_ref(&input), &mut rng)
            .expect("online");
        assert_eq!(y.col(0), expected, "MLP logits diverge from forward_exact");
        handle.join().expect("server thread")
    });
    (server_sent, cch.sent)
}

/// One full transformer session under `threads` workers; returns
/// (server-sent, client-sent) transcripts, logits asserted bit-exact.
fn transformer_transcripts(threads: usize) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let config = QuantConfig {
        ring: Ring::new(16),
        frac_bits: 6,
        weight_frac_bits: 2,
        scheme: FragmentScheme::optimal(4),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x61);
    let model = QuantizedTransformer::random(4, 4, 8, 3, config, &mut rng).expect("transformer");
    let x: Vec<u64> = (0..model.seq * model.d)
        .map(|_| model.config.ring.reduce(rng.gen_range(-64i64..64) as u64))
        .collect();
    let expected = model.forward_exact(&x);

    let exec = ExecConfig::new().with_threads(threads);
    let server = SecureServer::for_model(model.clone()).with_exec(exec);
    let client = SecureClient::for_model(PublicTransformerInfo::from(&model)).with_exec(exec);
    let (server_ep, client_ep) = Endpoint::pair(NetworkModel::instant());
    let mut sch = RecordingTransport::new(server_ep);
    let mut cch = RecordingTransport::new(client_ep);
    let server_sent = std::thread::scope(|scope| {
        let handle = scope.spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0x62);
            server.run(&mut sch, 1, &mut rng).expect("server");
            sch.sent
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x63);
        let state = client.offline(&mut cch, 1, &mut rng).expect("offline");
        let y =
            client.online_raw(&mut cch, state, std::slice::from_ref(&x), &mut rng).expect("online");
        assert_eq!(y.col(0), expected, "transformer logits diverge from forward_exact");
        handle.join().expect("server thread")
    });
    (server_sent, cch.sent)
}

#[test]
fn mlp_parallel_offline_schedule_is_byte_identical() {
    let (srv1, cli1) = mlp_transcripts(1);
    let (srv4, cli4) = mlp_transcripts(4);
    assert!(!srv1.is_empty() && !cli1.is_empty(), "recorder saw no traffic");
    assert_transcripts_equal("MLP server", &srv1, &srv4);
    assert_transcripts_equal("MLP client", &cli1, &cli4);
}

#[test]
fn transformer_parallel_offline_schedule_is_byte_identical() {
    let (srv1, cli1) = transformer_transcripts(1);
    let (srv4, cli4) = transformer_transcripts(4);
    assert!(!srv1.is_empty() && !cli1.is_empty(), "recorder saw no traffic");
    assert_transcripts_equal("transformer server", &srv1, &srv4);
    assert_transcripts_equal("transformer client", &cli1, &cli4);
}
