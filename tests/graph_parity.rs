//! Graph-executor parity: logits must be bit-exact against the plaintext
//! oracle (`forward_exact`) and transcripts must move exactly as many
//! bytes as the pre-refactor hand-rolled pipelines did, across bitwidths
//! η ∈ {2, 3, 4, 8} including the mixed (3,3,2) fragment scheme, for both
//! an MLP and a CNN.
//!
//! The golden byte counts below were measured against the pre-graph
//! protocol code (commit 7861c07) with these exact models and seeds. The
//! MLP counts must match bit-for-bit; the CNN counts carry a fixed
//! `+2 × HELLO_LEN` delta because the graph refactor gives CNN sessions
//! the same version/parameter handshake the MLP always had.

use abnn2::core::cnn::{CnnClient, CnnServer};
use abnn2::core::{PublicModelInfo, SecureClient, SecureServer};
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{run_pair, NetworkModel};
use abnn2::nn::quant::{QuantConfig, QuantizedDense, QuantizedNetwork};
use abnn2::nn::{ConvShape, Network, QuantizedCnn, QuantizedConv};
use rand::{Rng, SeedableRng};

/// The η ∈ {2, 3, 4, 8} sweep, with 8 bits in both the uniform (2,2,2,2)
/// and mixed (3,3,2) fragmentations.
fn schemes() -> Vec<(&'static str, FragmentScheme)> {
    vec![
        ("eta2-ternary", FragmentScheme::ternary()),
        ("eta3", FragmentScheme::signed_bit_fields(&[3])),
        ("eta4", FragmentScheme::signed_bit_fields(&[2, 2])),
        ("eta8", FragmentScheme::signed_bit_fields(&[2, 2, 2, 2])),
        ("eta8-mixed-332", FragmentScheme::signed_bit_fields(&[3, 3, 2])),
    ]
}

fn mlp_model(seed: u64, scheme: FragmentScheme) -> QuantizedNetwork {
    let net = Network::new(&[12, 8, 6, 4], seed);
    let config = QuantConfig {
        ring: Ring::new(32),
        frac_bits: 8,
        weight_frac_bits: if scheme.eta() <= 2 { 0 } else { 2 },
        scheme,
    };
    QuantizedNetwork::quantize(&net, config)
}

fn cnn_model(seed: u64, scheme: FragmentScheme) -> QuantizedCnn {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (lo, hi) = scheme.weight_range();
    let in_shape = ConvShape { channels: 1, height: 8, width: 8 };
    let conv = QuantizedConv {
        out_channels: 2,
        in_shape,
        kh: 3,
        kw: 3,
        stride: 1,
        weights: (0..2 * 9).map(|_| rng.gen_range(lo..=hi)).collect(),
        bias: vec![5, 3],
    };
    // conv out 2×6×6 → pool 2 → 2×3×3 = 18 → dense 18→6→4.
    let mk_dense = |out_dim: usize, in_dim: usize, rng: &mut rand::rngs::StdRng| QuantizedDense {
        out_dim,
        in_dim,
        weights: (0..out_dim * in_dim).map(|_| rng.gen_range(lo..=hi)).collect(),
        bias: (0..out_dim as u64).collect(),
    };
    let d1 = mk_dense(6, 18, &mut rng);
    let d2 = mk_dense(4, 6, &mut rng);
    let config = QuantConfig {
        ring: Ring::new(32),
        frac_bits: 6,
        weight_frac_bits: if scheme.eta() <= 2 { 0 } else { 3 },
        scheme,
    };
    QuantizedCnn { config, conv, pool_window: 2, dense: vec![d1, d2] }
}

/// Runs one full MLP session (batch 2) and returns the transcript's total
/// payload bytes, asserting logits equal `forward_exact` on the way.
fn mlp_total_bytes(seed: u64, scheme: FragmentScheme) -> u64 {
    let q = mlp_model(seed, scheme);
    let ring = q.config.ring;
    let batch = 2usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
    let inputs_fp: Vec<Vec<u64>> = (0..batch)
        .map(|_| (0..12).map(|_| ring.reduce(rng.gen_range(0..1u64 << 10))).collect())
        .collect();
    let expected: Vec<Vec<u64>> = inputs_fp.iter().map(|x| q.forward_exact(x)).collect();

    let server = SecureServer::new(q.clone());
    let client = SecureClient::new(PublicModelInfo::from(&q));
    let inputs2 = inputs_fp.clone();
    let (srv, y, report) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
            server.run(ch, batch, &mut rng)
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 3);
            let state = client.offline(ch, batch, &mut rng).expect("offline");
            client.online_raw(ch, state, &inputs2, &mut rng).expect("online")
        },
    );
    srv.expect("server");
    for (k, want) in expected.iter().enumerate() {
        assert_eq!(&y.col(k), want, "MLP sample {k} logits diverge from forward_exact");
    }
    report.total_bytes()
}

/// Runs one full CNN session and returns the transcript's total payload
/// bytes, asserting logits equal `forward_exact` on the way.
fn cnn_total_bytes(seed: u64, scheme: FragmentScheme) -> u64 {
    let cnn = cnn_model(seed, scheme);
    let ring = cnn.config.ring;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
    let image: Vec<u64> = (0..cnn.conv.in_shape.len())
        .map(|_| ring.reduce(rng.gen_range(0..1u64 << cnn.config.frac_bits)))
        .collect();
    let expect = cnn.forward_exact(&image);

    let server = CnnServer::new(cnn.clone());
    let client = CnnClient::new(server.public_info());
    let image2 = image.clone();
    let (srv, got, report) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 2);
            server.run(ch, &mut rng)
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 3);
            client.run(ch, &image2, &mut rng).expect("client")
        },
    );
    srv.expect("server");
    assert_eq!(got, expect, "secure CNN logits diverge from forward_exact");
    report.total_bytes()
}

/// Pre-frame (protocol v2) transcript payload bytes, measured at commit
/// 7861c07 with the models and seeds above, keyed by scheme name.
const GOLDEN_MLP: [(&str, u64); 5] = [
    ("eta2-ternary", 202_656),
    ("eta3", 209_376),
    ("eta4", 214_752),
    ("eta8", 236_256),
    ("eta8-mixed-332", 236_256),
];

const GOLDEN_CNN: [(&str, u64); 5] = [
    ("eta2-ternary", 842_448),
    ("eta3", 858_048),
    ("eta4", 862_640),
    ("eta8", 896_784),
    ("eta8-mixed-332", 904_672),
];

/// The pre-refactor CNN pipeline had no hello exchange; the graph
/// executor runs CNN sessions through the same version/parameter
/// handshake the MLP always had, adding one 56-byte hello payload in each
/// direction.
const CNN_HANDSHAKE_DELTA: u64 = 2 * 56;

/// Per-frame-type tag overhead of protocol v3: every message now carries
/// a one-byte frame tag, so a session's transcript grows by exactly its
/// frame count over the v2 goldens. Rows are (frame type, frames per
/// session); `gamma` is the scheme's fragment-group count γ,
/// `linear_layers` the number of Dense/Conv ops, and `gc_rounds` the
/// number of garbled-circuit executions (one per ReLU layer, plus one per
/// MaxPool for the CNN). The MLP here runs 3 linear layers and 2 ReLU
/// rounds; the CNN 3 linear layers and 3 GC rounds (2 ReLU + 1 MaxPool).
fn frames_per_session(gamma: u64, linear_layers: u64, gc_rounds: u64) -> [(&'static str, u64); 13] {
    [
        // Handshake: one hello each way.
        ("hello", 2),
        // Base OTs seed IKNP and KK13 once per session (sender side).
        ("base-OT setup point", 2),
        ("base-OT point batch", 2),
        ("base-OT ciphertext batch", 2),
        // One IKNP extension per GC round (evaluator input labels).
        ("IKNP column matrix", gc_rounds),
        ("IKNP ciphertext batch", gc_rounds),
        // One KK13 extension + one masked batch per fragment group per
        // linear layer (the paper's γ(N−1) messages ride in the latter).
        ("KK13 column matrix", gamma * linear_layers),
        ("masked triplet batch", gamma * linear_layers),
        // Garbled-circuit material, once per GC round.
        ("garbler input labels", gc_rounds),
        ("garbled AND tables", gc_rounds),
        ("output decode map", gc_rounds),
        // Online phase: blinded input in, logit shares out.
        ("blinded input shares", 1),
        ("output shares", 1),
    ]
}

/// Total tag bytes a session adds over its v2 golden: one per frame.
fn tag_overhead(gamma: u64, linear_layers: u64, gc_rounds: u64) -> u64 {
    frames_per_session(gamma, linear_layers, gc_rounds).iter().map(|&(_, n)| n).sum()
}

fn golden(table: &[(&str, u64); 5], name: &str) -> u64 {
    table.iter().find(|(n, _)| *n == name).map(|&(_, b)| b).expect("scheme in golden table")
}

#[test]
fn mlp_transcript_matches_pre_refactor_golden_plus_frame_tags() {
    for (name, scheme) in schemes() {
        let gamma = scheme.fragments().len() as u64;
        let bytes = mlp_total_bytes(0x41, scheme);
        assert_eq!(
            bytes,
            golden(&GOLDEN_MLP, name) + tag_overhead(gamma, 3, 2),
            "MLP {name}: transcript must equal the v2 golden plus exactly \
             one tag byte per frame"
        );
    }
}

#[test]
fn cnn_transcript_matches_pre_refactor_golden_plus_handshake_and_tags() {
    for (name, scheme) in schemes() {
        let gamma = scheme.fragments().len() as u64;
        let bytes = cnn_total_bytes(0x42, scheme);
        assert_eq!(
            bytes,
            golden(&GOLDEN_CNN, name) + CNN_HANDSHAKE_DELTA + tag_overhead(gamma, 3, 3),
            "CNN {name}: transcript must equal the v2 golden plus the \
             handshake delta plus exactly one tag byte per frame"
        );
    }
}
