//! Backend parity: every [`CryptoBackend`] method must be bit-identical
//! to the portable oracle for random inputs, across batch lengths that
//! exercise the AES-NI 8-lane main loop, its scalar remainder, and the
//! empty batch. Also pins the determinism of the parallel MMO helper
//! (`hash_blocks_par`): sharding across worker threads can never change
//! a digest, which is what lets the parallel offline schedule keep
//! transcripts byte-identical.

use abnn2::crypto::{aes_ni_available, backend, choose_backend, Aes128, Block, RoHash};
use rand::{Rng, SeedableRng};

/// Batch lengths around the 8-lane boundary, plus the parallel-hash
/// threshold region.
const LENS: [usize; 10] = [0, 1, 7, 8, 9, 16, 63, 257, 4096, 4099];

#[test]
fn aesni_bit_equals_portable_for_every_trait_method() {
    if !aes_ni_available() {
        eprintln!("skipping: CPU has no AES-NI");
        return;
    }
    let portable = choose_backend(Some("portable"));
    let aesni = choose_backend(Some("aesni"));
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
    for trial in 0..8 {
        let aes = Aes128::new(Block::random(&mut rng));
        for len in LENS {
            let inputs: Vec<Block> = (0..len).map(|_| Block::random(&mut rng)).collect();

            let (mut a, mut b) = (inputs.clone(), inputs.clone());
            portable.aes_encrypt_blocks(&aes, &mut a);
            aesni.aes_encrypt_blocks(&aes, &mut b);
            assert_eq!(a, b, "aes_encrypt_blocks trial {trial} len {len}");

            let (mut a, mut b) = (inputs.clone(), inputs.clone());
            portable.mmo_hash_blocks(&aes, &mut a);
            aesni.mmo_hash_blocks(&aes, &mut b);
            assert_eq!(a, b, "mmo_hash_blocks trial {trial} len {len}");

            let ctr: u128 = rng.gen();
            let mut a = vec![Block::ZERO; len];
            let mut b = vec![Block::ZERO; len];
            portable.prg_fill(&aes, ctr, &mut a);
            aesni.prg_fill(&aes, ctr, &mut b);
            assert_eq!(a, b, "prg_fill trial {trial} len {len}");
        }
    }
}

#[test]
fn batched_mmo_matches_scalar_oracle_under_process_backend() {
    // Whatever backend() resolved to on this machine, the batched hash
    // must agree with the scalar T-table definition block for block.
    // `hash_blocks` consumes pre-whitened sigmas, so the scalar oracle is
    // `hash_block` with a zero tweak.
    let hash = RoHash::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    for len in LENS {
        let sigmas: Vec<Block> = (0..len).map(|_| Block::random(&mut rng)).collect();
        let mut batch = sigmas.clone();
        hash.hash_blocks(&mut batch);
        for (i, (s, h)) in sigmas.iter().zip(&batch).enumerate() {
            assert_eq!(*h, hash.hash_block(0, *s), "block {i} of {len} under {}", backend().name());
        }
    }
}

#[test]
fn parallel_hash_is_thread_count_invariant() {
    let hash = RoHash::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xFACE);
    // Straddle the internal parallel threshold (4096 blocks) with shard
    // splits that do and do not divide the batch evenly.
    for len in [0usize, 1, 4095, 4096, 4097, 9001] {
        let sigmas: Vec<Block> = (0..len).map(|_| Block::random(&mut rng)).collect();
        let mut want = sigmas.clone();
        hash.hash_blocks(&mut want);
        for threads in [1usize, 2, 3, 4, 7] {
            let mut got = sigmas.clone();
            hash.hash_blocks_par(&mut got, threads);
            assert_eq!(got, want, "len {len} threads {threads}");
        }
    }
}
