//! Property suite for the typed wire layer: every [`Frame`] implementation
//! in the workspace must uphold the codec contract documented on the trait.
//!
//! 1. **Round trip** — `decode(encode(x)) == x` for every payload size the
//!    frame's shape invariant admits.
//! 2. **Totality** — `decode` of *any* byte string (truncated at every
//!    prefix, or with any single byte corrupted) returns `Ok` or a typed
//!    [`WireError`] naming the frame — it never panics.
//! 3. **Tag discipline** — a frame received where a different frame type is
//!    expected surfaces as `Malformed("<name> frame tag")` through
//!    [`Transport::recv_frame`], and the connection stays usable.
//!
//! The generators below are deterministic (seeded xorshift) so a failure
//! reproduces without a seed dump.

use abnn2::crypto::Block;
use abnn2::net::wire::{tags, Blocks, Frame, U64Frame, WireGot};
use abnn2::net::{Endpoint, NetworkModel, TcpTransport, Transport, TransportError};
use std::borrow::Cow;
use std::io::Write;
use std::time::Duration;

/// Small deterministic byte generator (xorshift64*), enough entropy to
/// exercise the codecs without pulling a SeedableRng into every helper.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_u64() as u8).collect()
    }

    fn blocks(&mut self, n: usize) -> Vec<Block> {
        (0..n)
            .map(|_| Block::from((u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())))
            .collect()
    }
}

/// The totality property: decoding any prefix of the encoding, or the
/// encoding with any single byte flipped, must return without panicking,
/// and every `Err` must carry the frame's own name.
fn check_totality<F: Frame>(encoded: &[u8]) {
    for keep in 0..encoded.len() {
        if let Err(e) = F::decode(&encoded[..keep]) {
            assert_eq!(e.expected, F::NAME, "truncated {} decode names wrong frame", F::NAME);
            assert!(matches!(e.got, WireGot::Len(n) if n == keep), "{}: {:?}", F::NAME, e.got);
        }
    }
    let mut corrupted = encoded.to_vec();
    for i in 0..corrupted.len() {
        corrupted[i] ^= 0xA5;
        if let Err(e) = F::decode(&corrupted) {
            assert_eq!(e.expected, F::NAME, "corrupted {} decode names wrong frame", F::NAME);
        }
        corrupted[i] ^= 0xA5;
    }
}

/// Round trip + totality for one frame value.
fn check_frame<F: Frame + PartialEq + std::fmt::Debug>(frame: &F) {
    let mut buf = Vec::new();
    frame.encode_into(&mut buf);
    let back = F::decode(&buf)
        .unwrap_or_else(|e| panic!("{} failed to decode its own encoding: {e}", F::NAME));
    assert_eq!(&back, frame, "{} round trip diverged", F::NAME);
    check_totality::<F>(&buf);
}

/// Byte-payload frames with a `unit = N` invariant: round trip at several
/// multiples of the unit, including the empty payload.
fn check_byte_frame<F: Frame + PartialEq + std::fmt::Debug>(
    make: impl Fn(Vec<u8>) -> F,
    unit: usize,
    seed: u64,
) {
    let mut gen = Gen(seed | 1);
    for k in [0usize, 1, 3, 7] {
        check_frame(&make(gen.bytes(k * unit)));
    }
    // A ragged payload (unit > 1 only) must be rejected as a length error.
    if unit > 1 {
        let err = F::decode(&gen.bytes(unit + 1)).expect_err("ragged payload must not decode");
        assert_eq!(err.got, WireGot::Len(unit + 1));
        assert!(err.context.ends_with("frame length"), "{}", err.context);
    }
}

/// Block-payload frames with a `unit` of blocks per element.
fn check_block_frame<F: Frame + PartialEq + std::fmt::Debug>(
    make: impl Fn(Vec<Block>) -> F,
    unit: usize,
    seed: u64,
) {
    let mut gen = Gen(seed | 1);
    for k in [0usize, 1, 2, 5] {
        check_frame(&make(gen.blocks(k * unit)));
    }
    let err = F::decode(&gen.bytes(16 * unit + 1)).expect_err("ragged payload must not decode");
    assert_eq!(err.got, WireGot::Len(16 * unit + 1));
}

/// Fixed-size frames (`exact = N`): round trip at N, reject everything else.
fn check_exact_frame<F: Frame + PartialEq + std::fmt::Debug>(
    make: impl Fn(Vec<u8>) -> F,
    len: usize,
    seed: u64,
) {
    let mut gen = Gen(seed | 1);
    check_frame(&make(gen.bytes(len)));
    for bad in [0, 1, len - 1, len + 1] {
        if bad == len {
            continue;
        }
        let err = F::decode(&gen.bytes(bad)).expect_err("wrong length must not decode");
        assert_eq!(err.got, WireGot::Len(bad));
        assert_eq!(err.expected, F::NAME);
    }
}

#[test]
fn net_frames_round_trip_and_are_total() {
    let mut gen = Gen(0xABCD);
    for _ in 0..8 {
        check_frame(&U64Frame(gen.next_u64()));
    }
    for k in [0usize, 1, 4] {
        check_frame(&Blocks(Cow::Owned(gen.blocks(k))));
    }
    let err = U64Frame::decode(&[0u8; 7]).unwrap_err();
    assert_eq!(err.got, WireGot::Len(7));
    let err = Blocks::decode(&[0u8; 15]).unwrap_err();
    assert_eq!(err.context, "block batch frame length");
}

#[test]
fn ot_frames_round_trip_and_are_total() {
    use abnn2::ot::frames::*;
    check_exact_frame(BasePoint, 64, 0x10);
    check_byte_frame(BasePointBatch, 64, 0x11);
    check_byte_frame(BaseCtBatch, 32, 0x12);
    check_byte_frame(IknpColumns, abnn2::ot::KAPPA, 0x13);
    check_block_frame(IknpCts, 2, 0x14);
    check_byte_frame(OtCorrections, 1, 0x15);
    check_byte_frame(OtVecPayload, 1, 0x16);
    check_byte_frame(KkColumns, 256, 0x17);
    check_byte_frame(SilentBaseColumns, abnn2::ot::KAPPA, 0x18);
    check_byte_frame(SilentDerand, 1, 0x19);
    check_byte_frame(SilentSpcotMasks, 32, 0x1A);
    check_byte_frame(SilentSpcotSums, 16, 0x1B);
}

#[test]
fn gc_frames_round_trip_and_are_total() {
    use abnn2::gc::frames::*;
    check_block_frame(GcLabels, 1, 0x20);
    check_block_frame(GcTables, 2, 0x21);
    check_byte_frame(GcDecodeMap, 1, 0x22);
}

#[test]
fn core_frames_round_trip_and_are_total() {
    use abnn2::core::frames::*;
    check_exact_frame(Hello, abnn2::core::handshake::HELLO_LEN, 0x30);
    check_byte_frame(TripletMasked, 1, 0x31);
    check_byte_frame(BlindedInput, 1, 0x32);
    check_byte_frame(OutputShares, 1, 0x33);
    check_byte_frame(SignBits, 1, 0x34);
    check_byte_frame(NegShares, 1, 0x35);
    check_exact_frame(MaskedClass, 1, 0x36);
    check_byte_frame(BeaverOpenings, 1, 0x37);
    check_byte_frame(Bundle, 1, 0x38);
    check_byte_frame(MatmulOpenings, 1, 0x39);
}

/// Frame TAGs must agree with the central registry — a frame whose TAG
/// drifted from `tags::ALL` would make `WireError::Display` and the
/// DESIGN.md table lie about what crossed the wire.
#[test]
fn frame_tags_match_the_registry() {
    fn check<F: Frame>() {
        assert!(
            tags::ALL.iter().any(|&(t, _)| t == F::TAG),
            "{} (tag 0x{:02x}) is not in the registry",
            F::NAME,
            F::TAG
        );
        assert!(F::TAG_ERR.ends_with("frame tag"), "{}", F::TAG_ERR);
    }
    check::<U64Frame>();
    check::<Blocks>();
    {
        use abnn2::ot::frames::*;
        check::<BasePoint>();
        check::<BasePointBatch>();
        check::<BaseCtBatch>();
        check::<IknpColumns>();
        check::<IknpCts>();
        check::<OtCorrections>();
        check::<OtVecPayload>();
        check::<KkColumns>();
        check::<SilentBaseColumns>();
        check::<SilentDerand>();
        check::<SilentSpcotMasks>();
        check::<SilentSpcotSums>();
    }
    {
        use abnn2::gc::frames::*;
        check::<GcLabels>();
        check::<GcTables>();
        check::<GcDecodeMap>();
    }
    {
        use abnn2::core::frames::*;
        check::<Hello>();
        check::<TripletMasked>();
        check::<BlindedInput>();
        check::<OutputShares>();
        check::<SignBits>();
        check::<NegShares>();
        check::<MaskedClass>();
        check::<BeaverOpenings>();
        check::<Bundle>();
        check::<MatmulOpenings>();
    }
}

/// Receiving frame type A where B is expected fails with B's tag error and
/// leaves the connection usable — the cross-type safety net the tag byte
/// buys.
#[test]
fn mismatched_frame_types_surface_as_tag_errors() {
    use abnn2::core::frames::Hello;
    use abnn2::gc::frames::GcTables;
    let (mut a, mut b) = Endpoint::pair(NetworkModel::instant());

    a.send_frame(&U64Frame(7)).unwrap();
    a.flush().unwrap();
    assert_eq!(
        b.recv_frame::<Hello>(),
        Err(TransportError::Malformed("hello frame tag")),
        "u64 where hello expected"
    );

    a.send_frame(&GcTables(vec![Block::from(1u128), Block::from(2u128)])).unwrap();
    a.flush().unwrap();
    assert_eq!(
        b.recv_frame::<U64Frame>(),
        Err(TransportError::Malformed("u64 frame tag")),
        "garbled tables where u64 expected"
    );

    // The violation is not a disconnection: traffic continues.
    a.send_frame(&U64Frame(99)).unwrap();
    a.flush().unwrap();
    assert_eq!(b.recv_frame::<U64Frame>(), Ok(U64Frame(99)));
}

/// Every tag in the central registry must declare a per-tag payload
/// ceiling: the decode path sizes its allocation from the length prefix,
/// so a registered frame without a ceiling would let a malicious peer
/// demand up to the global frame cap per message. Unregistered tags fall
/// back to a deliberately tight default.
#[test]
fn every_registered_tag_declares_a_decode_ceiling() {
    for &(tag, name) in tags::ALL {
        let ceiling = tags::max_len(tag);
        assert!(ceiling.is_some(), "{name} (tag 0x{tag:02x}) declares no payload ceiling");
        assert!(ceiling.unwrap() >= 1, "{name}: ceiling must admit at least a bare tag frame");
    }
    // Unknown tags must get a tight ceiling, not the global frame cap.
    const { assert!(tags::UNREGISTERED_MAX_LEN <= 1 << 20) };
    // Spot-pin the fixed-size frames so the table cannot silently loosen.
    assert_eq!(tags::max_len(tags::U64), Some(8));
    assert_eq!(tags::max_len(tags::HELLO), Some(abnn2::core::handshake::HELLO_LEN));
    assert_eq!(tags::max_len(tags::MASKED_CLASS), Some(1));
    // The matmul-openings ceiling must admit a D‖E opening pair for the
    // largest supported secret×secret matmul, same class as Beaver openings.
    assert_eq!(tags::max_len(tags::MATMUL_OPENINGS), Some(1 << 26));
}

/// A length prefix claiming a payload far above its tag's ceiling must be
/// rejected as a typed [`TransportError::Malformed`] at the framing layer
/// — *before* the receiver allocates the claimed buffer. The claimed
/// length here sits inside the global frame cap, so only the per-tag
/// ceiling can be the thing that catches it.
#[test]
fn oversized_frame_is_rejected_by_tag_ceiling_before_allocation() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mut sender = std::net::TcpStream::connect(addr).expect("connect");
    let (stream, _) = listener.accept().expect("accept");
    let mut ch = TcpTransport::from_stream(stream).expect("transport");
    ch.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");

    // A u64 frame (ceiling: 8 payload bytes) claiming just under 1 GiB.
    let len: u32 = (1 << 30) - 1;
    sender.write_all(&len.to_le_bytes()).expect("header");
    sender.write_all(&[tags::U64]).expect("tag");
    sender.flush().expect("flush");
    let err = Transport::recv(&mut ch).expect_err("oversized frame must not decode");
    assert_eq!(err, TransportError::Malformed("frame length exceeds tag ceiling"));
}

/// A flipped tag byte on an otherwise valid frame is caught before the
/// payload is interpreted, whatever the frame type.
#[test]
fn corrupted_tag_byte_is_caught_for_every_registered_tag() {
    let (mut a, mut b) = Endpoint::pair(NetworkModel::instant());
    for &(tag, _) in tags::ALL {
        // A well-formed u64 frame re-tagged as `tag ^ 0xA5` (never a valid
        // registry tag for u64) must fail u64 reception on the tag byte.
        let mut raw = vec![tag ^ 0xA5];
        raw.extend_from_slice(&7u64.to_le_bytes());
        Transport::send(&mut a, &raw).unwrap();
        a.flush().unwrap();
        let got = b.recv_u64();
        if tag ^ 0xA5 == tags::U64 {
            assert_eq!(got, Ok(7));
        } else {
            assert_eq!(got, Err(TransportError::Malformed("u64 frame tag")));
        }
    }
}
