//! Integration checks of the paper's *qualitative* efficiency claims — the
//! shapes that must hold even though absolute numbers depend on hardware:
//! who wins, in which direction costs move, and where the savings come
//! from.

use abnn2::core::matmul::{triplet_client, triplet_server, TripletMode};
use abnn2::math::{FragmentScheme, Matrix, Ring};
use abnn2::net::{run_pair, Endpoint, InstrumentedTransport, NetworkModel};
use abnn2::ot::{FragmentChooser, FragmentSender, IknpReceiver, IknpSender, OfflineMode};
use rand::SeedableRng;

fn offline_bytes(scheme: &FragmentScheme, m: usize, n: usize, o: usize, ring_bits: u32) -> u64 {
    let ring = Ring::new(ring_bits);
    let mode = TripletMode::for_batch(o);
    let weights = {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (lo, hi) = scheme.weight_range();
        (0..m * n).map(|_| rng.gen_range(lo..=hi)).collect::<Vec<i64>>()
    };
    let (s1, s2) = (scheme.clone(), scheme.clone());
    let (_, _, report) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            let mut kk = FragmentChooser::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
            triplet_server(ch, &mut kk, &weights, m, n, o, &s1, ring, mode).expect("server")
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            let mut kk = FragmentSender::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
            let r = Matrix::random(n, o, &ring, &mut rng);
            triplet_client(ch, &mut kk, &r, m, &s2, ring, mode, &mut rng).expect("client")
        },
    );
    report.total_bytes()
}

/// Table 2's ordering: communication grows with weight bitwidth.
#[test]
fn comm_grows_with_bitwidth() {
    let binary = offline_bytes(&FragmentScheme::binary(), 16, 32, 1, 32);
    let ternary = offline_bytes(&FragmentScheme::ternary(), 16, 32, 1, 32);
    let four = offline_bytes(&FragmentScheme::signed_bit_fields(&[2, 2]), 16, 32, 1, 32);
    let eight = offline_bytes(&FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 16, 32, 1, 32);
    assert!(binary <= ternary, "binary {binary} vs ternary {ternary}");
    assert!(ternary < four, "ternary {ternary} vs 4-bit {four}");
    assert!(four < eight, "4-bit {four} vs 8-bit {eight}");
}

/// Table 2's finding: 2-bit fragments beat 1-bit fragments for 8-bit
/// weights in one-batch communication.
#[test]
fn two_bit_fragments_beat_one_bit() {
    let one_bit = offline_bytes(&FragmentScheme::signed_bit_fields(&[1; 8]), 16, 32, 1, 32);
    let two_bit = offline_bytes(&FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 16, 32, 1, 32);
    assert!(two_bit < one_bit, "(2,2,2,2) {two_bit} must beat (1,…,1) {one_bit}");
}

/// Table 2's multi-batch behaviour: amortized per-prediction communication
/// falls as the batch grows.
#[test]
fn multi_batch_amortizes_per_prediction_cost() {
    let scheme = FragmentScheme::signed_bit_fields(&[2, 2]);
    let b1 = offline_bytes(&scheme, 16, 32, 1, 32);
    let b8 = offline_bytes(&scheme, 16, 32, 8, 32);
    assert!(
        (b8 as f64) / 8.0 < b1 as f64,
        "amortized batch-8 cost {} must beat batch-1 cost {b1}",
        b8 / 8
    );
}

/// Table 3's headline: ABNN² offline beats SecureML for quantized weights,
/// by a growing factor as bitwidth shrinks.
#[test]
fn ours_beats_secureml_and_gap_grows_with_quantization() {
    use abnn2::baselines::secureml::{matvec_client, matvec_server};
    let ring = Ring::new(64);
    let (m, n) = (16, 64);
    let secureml_bytes = {
        let (_, _, report) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(4);
                let weights = ring.sample_vec(&mut rng, m * n);
                let mut ot = IknpReceiver::setup(ch, &mut rng).expect("setup");
                matvec_server(ch, &mut ot, &weights, m, n, ring).expect("server")
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(5);
                let r = ring.sample_vec(&mut rng, n);
                let mut ot = IknpSender::setup(ch, &mut rng).expect("setup");
                matvec_client(ch, &mut ot, &r, m, ring).expect("client")
            },
        );
        report.total_bytes()
    };
    let eight = offline_bytes(&FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), m, n, 1, 64);
    let binary = offline_bytes(&FragmentScheme::binary(), m, n, 1, 64);
    assert!(eight < secureml_bytes, "8-bit {eight} vs SecureML {secureml_bytes}");
    let factor_8 = secureml_bytes as f64 / eight as f64;
    let factor_1 = secureml_bytes as f64 / binary as f64;
    assert!(
        factor_1 > factor_8,
        "advantage must grow as bitwidth shrinks: x{factor_1:.1} (binary) vs x{factor_8:.1} (8-bit)"
    );
}

/// Table 4's structural contrast: MiniONN's HE offline traffic is
/// *independent of the weight bitwidth* (it ships ciphertexts, not
/// weight-bit OTs), while ABNN²'s traffic scales with η. This is the
/// property that makes ABNN² win at low bitwidths in the paper.
#[test]
fn minionn_comm_is_bitwidth_independent_ours_is_not() {
    use abnn2::baselines::minionn::{MinionnClient, MinionnServer};
    use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
    use abnn2::nn::{Network, SyntheticMnist};
    let data = SyntheticMnist::generate(50, 0, 6);
    let mut net = Network::new(&[784, 8, 10], 6);
    net.train_epoch(&data.train, 0.05);

    let minionn_bytes = |scheme: FragmentScheme, fw: u32| -> u64 {
        let config =
            QuantConfig { ring: Ring::new(32), frac_bits: 8, weight_frac_bits: fw, scheme };
        let q = QuantizedNetwork::quantize(&net, config);
        let server = MinionnServer::new(q.clone(), 256);
        let client = MinionnClient::new(server.public_info(), 256);
        let (_, _, report) = run_pair(
            NetworkModel::instant(),
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(7);
                let _ = server.offline(ch, 1, &mut rng).expect("offline");
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(8);
                let _ = client.offline(ch, 1, &mut rng).expect("offline");
            },
        );
        report.total_bytes()
    };
    let minionn_binary = minionn_bytes(FragmentScheme::binary(), 0);
    let minionn_8bit = minionn_bytes(FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 4);
    let he_ratio = minionn_8bit as f64 / minionn_binary as f64;
    assert!(
        (0.95..1.05).contains(&he_ratio),
        "MiniONN bytes must not depend on bitwidth: binary {minionn_binary} vs 8-bit {minionn_8bit}"
    );

    let ours_binary = offline_bytes(&FragmentScheme::binary(), 8, 784, 1, 32);
    let ours_8bit = offline_bytes(&FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]), 8, 784, 1, 32);
    let ot_ratio = ours_8bit as f64 / ours_binary as f64;
    assert!(
        ot_ratio > 2.0,
        "ABNN² bytes must scale with bitwidth: binary {ours_binary} vs 8-bit {ours_8bit}"
    );
}

/// Section 4.2's message count, now measurable *per frame tag* on the
/// wire: in one-batch mode the client answers each KK13 OT with N−1
/// masked messages, so for η = 8 under the (2,2,2,2) scheme the
/// `TRIPLET_MASKED` tag must carry exactly γ batches totalling
/// γ·(N−1)·m·n·elem bytes — and nothing else may ride under that tag.
#[test]
fn kk13_masked_message_bytes_match_the_papers_gamma_n_minus_one_count() {
    use abnn2::net::wire::tags;
    let scheme = FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]);
    let ring = Ring::new(32);
    let (m, n, o) = (16usize, 32usize, 1usize);

    let weights = {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (lo, hi) = scheme.weight_range();
        (0..m * n).map(|_| rng.gen_range(lo..=hi)).collect::<Vec<i64>>()
    };
    let (server_ep, client_ep) = Endpoint::pair(NetworkModel::instant());
    let mut client_ch = InstrumentedTransport::new(client_ep);
    let handle = client_ch.handle();
    let (s1, s2) = (scheme.clone(), scheme.clone());
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut ch = server_ep;
            let mut rng = rand::rngs::StdRng::seed_from_u64(12);
            let mut kk =
                FragmentChooser::setup(&mut ch, OfflineMode::Iknp, &mut rng).expect("setup");
            triplet_server(&mut ch, &mut kk, &weights, m, n, o, &s1, ring, TripletMode::OneBatch)
                .expect("server");
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut kk =
            FragmentSender::setup(&mut client_ch, OfflineMode::Iknp, &mut rng).expect("setup");
        let r = Matrix::random(n, o, &ring, &mut rng);
        triplet_client(&mut client_ch, &mut kk, &r, m, &s2, ring, TripletMode::OneBatch, &mut rng)
            .expect("client");
    });

    let stats = handle.tag(tags::TRIPLET_MASKED);
    // One TRIPLET_MASKED frame per fragment group…
    let gamma = scheme.fragments().len() as u64;
    assert_eq!(gamma, 4);
    assert_eq!(stats.messages_sent, gamma);
    // …carrying the paper's γ(N−1) masked messages of m·n·elem bytes.
    let elem = (o * ring.byte_len()) as u64;
    let expected: u64 =
        scheme.fragments().iter().map(|frag| (frag.n - 1) * (m * n) as u64 * elem).sum();
    assert_eq!(stats.bytes_sent, expected);
    // Pinned absolute count for this shape: 4 groups × 3 masked messages
    // × 512 OTs × 4 bytes.
    assert_eq!(stats.bytes_sent, 24_576);
    // The count is exclusive: triplet traffic under no other core tag.
    assert_eq!(handle.tag(tags::BLINDED_INPUT).bytes_sent, 0);
}

/// WAN latency shows up in simulated time but not in LAN runs — the
/// network substrate behaves like the paper's `tc`-shaped links.
#[test]
fn wan_simulation_adds_latency() {
    let scheme = FragmentScheme::ternary();
    let ring = Ring::new(32);
    let run = |model| {
        let s = scheme.clone();
        let s2 = scheme.clone();
        let (_, _, report) = run_pair(
            model,
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(9);
                let mut kk =
                    FragmentChooser::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                triplet_server(
                    ch,
                    &mut kk,
                    &[1, 0, -1, 1],
                    2,
                    2,
                    1,
                    &s,
                    ring,
                    TripletMode::OneBatch,
                )
                .expect("server")
            },
            move |ch| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(10);
                let mut kk = FragmentSender::setup(ch, OfflineMode::Iknp, &mut rng).expect("setup");
                let r = Matrix::random(2, 1, &ring, &mut rng);
                triplet_client(ch, &mut kk, &r, 2, &s2, ring, TripletMode::OneBatch, &mut rng)
                    .expect("client")
            },
        );
        report.simulated_time()
    };
    let lan = run(NetworkModel::lan());
    let wan = run(NetworkModel::wan_secureml());
    assert!(wan > lan + std::time::Duration::from_millis(50), "wan {wan:?} vs lan {lan:?}");
}

/// Runs one triplet generation under `ot` with the client channel
/// instrumented, returning the tag/phase handle.
fn triplet_traffic(ot: OfflineMode, m: usize, n: usize, o: usize) -> abnn2::net::InstrumentHandle {
    let scheme = FragmentScheme::signed_bit_fields(&[2, 2, 2, 2]);
    let ring = Ring::new(32);
    let weights = {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let (lo, hi) = scheme.weight_range();
        (0..m * n).map(|_| rng.gen_range(lo..=hi)).collect::<Vec<i64>>()
    };
    let (server_ep, client_ep) = Endpoint::pair(NetworkModel::instant());
    let mut client_ch = InstrumentedTransport::new(client_ep);
    let handle = client_ch.handle();
    let (s1, s2) = (scheme.clone(), scheme);
    let mode = TripletMode::for_batch(o);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut ch = server_ep;
            let mut rng = rand::rngs::StdRng::seed_from_u64(22);
            let mut kk = FragmentChooser::setup(&mut ch, ot, &mut rng).expect("setup");
            triplet_server(&mut ch, &mut kk, &weights, m, n, o, &s1, ring, mode).expect("server");
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut kk = FragmentSender::setup(&mut client_ch, ot, &mut rng).expect("setup");
        let r = Matrix::random(n, o, &ring, &mut rng);
        triplet_client(&mut client_ch, &mut kk, &r, m, &s2, ring, mode, &mut rng).expect("client");
    });
    handle
}

/// The silent subsystem's headline: the OT-extension component of the
/// offline phase shrinks by more than an order of magnitude. For the
/// (2,2,2,2) scheme at m=48, n=96 the IKNP/KK13 path streams KK_COLUMNS
/// for every fragment OT, while the silent path ships only the one-time
/// base-OT columns plus per-refill SPCOT masks/sums and derandomization
/// bits.
#[test]
fn silent_extension_bytes_beat_kk13_by_an_order_of_magnitude() {
    use abnn2::net::wire::tags;
    let (m, n, o) = (48usize, 96usize, 1usize);

    let iknp = triplet_traffic(OfflineMode::Iknp, m, n, o);
    let silent = triplet_traffic(OfflineMode::Silent, m, n, o);

    let kk_ext = iknp.tag(tags::KK_COLUMNS).total_bytes();
    let silent_ext = [
        tags::SILENT_BASE_COLUMNS,
        tags::SILENT_DERAND,
        tags::SILENT_SPCOT_MASKS,
        tags::SILENT_SPCOT_SUMS,
    ]
    .iter()
    .map(|&t| silent.tag(t).total_bytes())
    .sum::<u64>();

    // Pinned, next to the KK13 pin above: 4 fragment groups × 4·m·n
    // chosen-input OTs, each costing 2^η/8 = 32 column bytes under IKNP.
    assert_eq!(kk_ext, 589_824);
    // Silent replaces the columns with: one-time base-OT bootstrap
    // (10,496 B), five pool refills of SPCOT masks (5 × 4,608 B) and
    // level sums (5 × 256 B), and derandomization bits (2 bits per
    // fragment OT plus 18 B per refill ⇒ 4,698 B).
    assert_eq!(silent.tag(tags::SILENT_BASE_COLUMNS).total_bytes(), 10_496);
    assert_eq!(silent.tag(tags::SILENT_SPCOT_MASKS).total_bytes(), 23_040);
    assert_eq!(silent.tag(tags::SILENT_SPCOT_SUMS).total_bytes(), 1_280);
    assert_eq!(silent.tag(tags::SILENT_DERAND).total_bytes(), 4_698);
    assert_eq!(silent_ext, 39_514);
    // A silent session never streams KK columns at all.
    assert_eq!(silent.tag(tags::KK_COLUMNS).total_bytes(), 0);

    // ≥10× on the OT-extension component (measured: 14.9×)…
    assert!(silent_ext * 10 <= kk_ext, "extension: silent {silent_ext} vs kk {kk_ext}");
    // …and a ≥2× win on the whole offline exchange even though the
    // γ(N−1) masked-triplet payload is unchanged (measured: 3.06×).
    let iknp_total = iknp.total().total_bytes();
    let silent_total = silent.total().total_bytes();
    assert!(silent_total * 2 <= iknp_total, "total: silent {silent_total} vs iknp {iknp_total}");
}
