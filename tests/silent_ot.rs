//! End-to-end acceptance of the silent-OT offline subsystem: a session
//! negotiated onto the silent (LPN) backend must produce **bit-exact**
//! logits against both the plaintext oracle and an identical IKNP/KK13
//! session, for MLP and CNN topologies across the paper's η sweep.

use abnn2::core::{SecureClient, SecureServer};
use abnn2::math::{FragmentScheme, Matrix, Ring};
use abnn2::net::{run_pair, NetworkModel};
use abnn2::nn::quant::{QuantConfig, QuantizedDense, QuantizedNetwork};
use abnn2::nn::{ConvShape, Network, QuantizedCnn, QuantizedConv};
use rand::{Rng, SeedableRng};

/// The η ∈ {2, 3, 4, 8} sweep.
fn schemes() -> Vec<(&'static str, FragmentScheme)> {
    vec![
        ("eta2-ternary", FragmentScheme::ternary()),
        ("eta3", FragmentScheme::signed_bit_fields(&[3])),
        ("eta4", FragmentScheme::signed_bit_fields(&[2, 2])),
        ("eta8", FragmentScheme::signed_bit_fields(&[2, 2, 2, 2])),
    ]
}

fn mlp_model(seed: u64, scheme: FragmentScheme) -> QuantizedNetwork {
    let net = Network::new(&[12, 8, 6, 4], seed);
    let config = QuantConfig {
        ring: Ring::new(32),
        frac_bits: 8,
        weight_frac_bits: if scheme.eta() <= 2 { 0 } else { 2 },
        scheme,
    };
    QuantizedNetwork::quantize(&net, config)
}

fn cnn_model(seed: u64, scheme: FragmentScheme) -> QuantizedCnn {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (lo, hi) = scheme.weight_range();
    let in_shape = ConvShape { channels: 1, height: 8, width: 8 };
    let conv = QuantizedConv {
        out_channels: 2,
        in_shape,
        kh: 3,
        kw: 3,
        stride: 1,
        weights: (0..2 * 9).map(|_| rng.gen_range(lo..=hi)).collect(),
        bias: vec![5, 3],
    };
    // conv out 2×6×6 → pool 2 → 2×3×3 = 18 → dense 18→6→4.
    let mk_dense = |out_dim: usize, in_dim: usize, rng: &mut rand::rngs::StdRng| QuantizedDense {
        out_dim,
        in_dim,
        weights: (0..out_dim * in_dim).map(|_| rng.gen_range(lo..=hi)).collect(),
        bias: (0..out_dim as u64).collect(),
    };
    let d1 = mk_dense(6, 18, &mut rng);
    let d2 = mk_dense(4, 6, &mut rng);
    let config = QuantConfig {
        ring: Ring::new(32),
        frac_bits: 6,
        weight_frac_bits: if scheme.eta() <= 2 { 0 } else { 3 },
        scheme,
    };
    QuantizedCnn { config, conv, pool_window: 2, dense: vec![d1, d2] }
}

/// One full session (any served topology) with the client's silent
/// capability bit set or cleared, fixed seeds, returning raw logits.
fn run_session(server: &SecureServer, inputs_fp: &[Vec<u64>], silent: bool, seed: u64) -> Matrix {
    let batch = inputs_fp.len();
    let client = SecureClient::for_model(server.public_model()).with_silent(silent);
    let inputs2 = inputs_fp.to_vec();
    let server = server.clone();
    let (srv, y, _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            server.run(ch, batch, &mut rng)
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
            let state = client.offline(ch, batch, &mut rng).expect("offline");
            client.online_raw(ch, state, &inputs2, &mut rng).expect("online")
        },
    );
    srv.expect("server");
    y
}

/// MLP: for every η, the silent session's logits equal the plaintext
/// oracle *and* an IKNP session run with the same seeds — the backend is
/// observable only on the wire, never in the function computed.
#[test]
fn silent_mlp_logits_bit_exact_across_eta_sweep() {
    for (label, scheme) in schemes() {
        let q = mlp_model(300, scheme);
        let ring = q.config.ring;
        let mut rng = rand::rngs::StdRng::seed_from_u64(301);
        let batch = 2usize;
        let inputs_fp: Vec<Vec<u64>> = (0..batch)
            .map(|_| (0..12).map(|_| ring.reduce(rng.gen_range(0..1u64 << 10))).collect())
            .collect();
        let expected: Vec<Vec<u64>> = inputs_fp.iter().map(|x| q.forward_exact(x)).collect();

        let server = SecureServer::new(q.clone());
        let silent = run_session(&server, &inputs_fp, true, 302);
        let iknp = run_session(&server, &inputs_fp, false, 302);
        for (k, want) in expected.iter().enumerate() {
            assert_eq!(&silent.col(k), want, "{label}: silent MLP logits diverge from oracle");
            assert_eq!(silent.col(k), iknp.col(k), "{label}: silent vs IKNP MLP logits diverge");
        }
    }
}

/// CNN: same bit-exactness through the spatial graph (conv → pool →
/// dense), batch 1, for every η.
#[test]
fn silent_cnn_logits_bit_exact_across_eta_sweep() {
    for (label, scheme) in schemes() {
        let cnn = cnn_model(310, scheme);
        let ring = cnn.config.ring;
        let mut rng = rand::rngs::StdRng::seed_from_u64(311);
        let image: Vec<u64> = (0..cnn.conv.in_shape.len())
            .map(|_| ring.reduce(rng.gen_range(0..1u64 << cnn.config.frac_bits)))
            .collect();
        let expected = cnn.forward_exact(&image);

        let server = SecureServer::for_model(cnn.clone());
        let inputs = vec![image];
        let silent = run_session(&server, &inputs, true, 312);
        let iknp = run_session(&server, &inputs, false, 312);
        assert_eq!(silent.col(0), expected, "{label}: silent CNN logits diverge from oracle");
        assert_eq!(silent.col(0), iknp.col(0), "{label}: silent vs IKNP CNN logits diverge");
    }
}
