//! Transport contract suite: every [`Transport`] implementation must agree
//! on round-trip delivery, typed-helper framing, error classification
//! (`Closed` vs `Malformed`) and application-byte accounting. The same
//! checks run against the simulated [`Endpoint`], a real localhost
//! [`TcpTransport`] pair, and a [`FaultyTransport`] with an empty fault
//! plan (which must be fully transparent).

use abnn2::crypto::Block;
use abnn2::net::{
    Endpoint, Fault, FaultyTransport, NetworkModel, TcpTransport, Transport, TransportError,
};
use std::net::TcpListener;
use std::thread;

/// Bidirectional delivery of raw bytes, `u64`s, blocks, and the empty
/// message, plus payload-only accounting — identical for every transport.
fn check_round_trip_and_stats<A: Transport, B: Transport>(a: &mut A, b: &mut B) {
    a.send(b"ping").unwrap();
    a.send_u64(0xDEAD_BEEF).unwrap();
    a.send_blocks(&[Block::from(1u128), Block::from(2u128)]).unwrap();
    a.send(b"").unwrap();
    a.flush().unwrap();

    assert_eq!(b.recv().unwrap(), b"ping");
    assert_eq!(b.recv_u64().unwrap(), 0xDEAD_BEEF);
    assert_eq!(b.recv_blocks().unwrap(), vec![Block::from(1u128), Block::from(2u128)]);
    assert_eq!(b.recv().unwrap(), b"");

    b.send_owned(vec![7u8; 3]).unwrap();
    b.flush().unwrap();
    assert_eq!(a.recv().unwrap(), vec![7u8; 3]);

    // Application payload bytes only: raw sends are untagged (4 + 0),
    // typed helpers are frames with a one-byte tag (9 + 33); 3 the other
    // way.
    let snap_a = a.snapshot();
    assert_eq!(snap_a.bytes_sent, 46);
    assert_eq!(snap_a.messages_sent, 4);
    assert_eq!(snap_a.bytes_received, 3);
    assert_eq!(b.snapshot().bytes_received, 46);
}

/// Typed receive helpers must reject mistagged and wrong-length messages
/// as `Malformed`, naming the violated frame kind, and leave the
/// connection usable.
fn check_malformed_frames<A: Transport, B: Transport>(a: &mut A, b: &mut B) {
    a.send(b"123").unwrap();
    a.flush().unwrap();
    assert_eq!(b.recv_u64(), Err(TransportError::Malformed("u64 frame tag")));

    a.send(&[abnn2::net::wire::tags::U64, 1, 2, 3]).unwrap();
    a.flush().unwrap();
    assert_eq!(b.recv_u64(), Err(TransportError::Malformed("u64 frame length")));

    let mut blocks = vec![abnn2::net::wire::tags::BLOCKS];
    blocks.extend_from_slice(&[0u8; 17]);
    a.send(&blocks).unwrap();
    a.flush().unwrap();
    assert_eq!(b.recv_blocks(), Err(TransportError::Malformed("block batch frame length")));

    // A framing violation is not a disconnection: traffic continues.
    a.send_u64(99).unwrap();
    a.flush().unwrap();
    assert_eq!(b.recv_u64().unwrap(), 99);
}

/// Dropping one side must surface as `Closed` — never a hang or a panic.
fn check_disconnect<A: Transport, B: Transport>(a: A, b: &mut B) {
    drop(a);
    assert_eq!(b.recv(), Err(TransportError::Closed));
}

/// Connected localhost TCP pair.
fn tcp_pair() -> (TcpTransport, TcpTransport) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client = thread::spawn(move || TcpTransport::connect(addr).expect("connect"));
    let (stream, _) = listener.accept().expect("accept");
    (TcpTransport::from_stream(stream).expect("wrap"), client.join().expect("join"))
}

mod endpoint {
    use super::*;

    #[test]
    fn round_trip_and_stats() {
        let (mut a, mut b) = Endpoint::pair(NetworkModel::instant());
        check_round_trip_and_stats(&mut a, &mut b);
    }

    #[test]
    fn malformed_frames() {
        let (mut a, mut b) = Endpoint::pair(NetworkModel::instant());
        check_malformed_frames(&mut a, &mut b);
    }

    #[test]
    fn disconnect() {
        let (a, mut b) = Endpoint::pair(NetworkModel::instant());
        check_disconnect(a, &mut b);
    }
}

mod tcp {
    use super::*;

    #[test]
    fn round_trip_and_stats() {
        let (mut a, mut b) = tcp_pair();
        check_round_trip_and_stats(&mut a, &mut b);
    }

    #[test]
    fn malformed_frames() {
        let (mut a, mut b) = tcp_pair();
        check_malformed_frames(&mut a, &mut b);
    }

    #[test]
    fn disconnect() {
        let (a, mut b) = tcp_pair();
        check_disconnect(a, &mut b);
    }
}

mod faulty_transparent {
    use super::*;

    fn pair() -> (FaultyTransport<Endpoint>, FaultyTransport<Endpoint>) {
        let (a, b) = Endpoint::pair(NetworkModel::instant());
        (FaultyTransport::new(a, Fault::None), FaultyTransport::new(b, Fault::None))
    }

    #[test]
    fn round_trip_and_stats() {
        let (mut a, mut b) = pair();
        check_round_trip_and_stats(&mut a, &mut b);
    }

    #[test]
    fn malformed_frames() {
        let (mut a, mut b) = pair();
        check_malformed_frames(&mut a, &mut b);
    }

    #[test]
    fn disconnect() {
        let (a, mut b) = pair();
        check_disconnect(a, &mut b);
    }
}

/// The decorators compose over TCP exactly as over the simulator.
#[test]
fn faulty_over_tcp_truncates_one_message() {
    let (s, c) = tcp_pair();
    let mut s = FaultyTransport::new(s, Fault::TruncateMessage { index: 0, keep: 2 });
    let mut c = c;
    s.send_u64(u64::MAX).unwrap();
    s.flush().unwrap();
    // keep = 2 leaves the tag byte plus one payload byte: the tag check
    // passes, the length check rejects.
    assert_eq!(c.recv_u64(), Err(TransportError::Malformed("u64 frame length")));
}
