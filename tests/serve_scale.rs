//! Sessions-per-worker scaling: many more concurrent clients than worker
//! threads, served by event-loop workers each multiplexing a batch of
//! suspendable sessions. Every logit must stay bit-exact, and the
//! server's peak protocol-thread count must scale with `workers`, not
//! with the number of connected clients — the point of the readiness
//! driven session engine.

use abnn2::core::PublicModelInfo;
use abnn2::core::SessionDeadlines;
use abnn2::math::{FragmentScheme, Ring};
use abnn2::nn::quant::{QuantConfig, QuantizedNetwork};
use abnn2::nn::Network;
use abnn2::serve::{ServeClient, ServeConfig, Server};
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

fn tiny_model(seed: u64) -> QuantizedNetwork {
    let net = Network::new(&[12, 8, 6, 4], seed);
    QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        },
    )
}

fn sample_input(dim: usize, seed: u64) -> Vec<u64> {
    (0..dim).map(|j| (seed.wrapping_mul(31).wrapping_add(j as u64 * 7)) & 0xFFFF).collect()
}

/// Counts live threads of this process whose name starts with `abnn2-`
/// (acceptor, supervisor, workers, pool producers). `None` when the
/// platform has no
/// readable `/proc/self/task`, in which case the thread-scaling assertion
/// is skipped — the bit-exactness half of the test still runs everywhere.
fn protocol_threads() -> Option<usize> {
    let dir = std::fs::read_dir("/proc/self/task").ok()?;
    Some(
        dir.filter_map(Result::ok)
            .filter(|t| {
                std::fs::read_to_string(t.path().join("comm"))
                    .is_ok_and(|comm| comm.trim_end().starts_with("abnn2-"))
            })
            .count(),
    )
}

#[test]
fn sixty_four_clients_multiplex_over_four_workers() {
    const CLIENTS: usize = 64;
    const WORKERS: usize = 4;

    let q = tiny_model(4242);
    let info = PublicModelInfo::from(&q);
    // 64 cold sessions time-share 4 CPUs: a session can legitimately wait
    // well past the 10 s LAN default for its worker's attention, so both
    // sides get deadlines sized for the load — this test is about thread
    // scaling, not deadline enforcement.
    let generous = SessionDeadlines::uniform(Duration::from_secs(120));
    let server = Server::start(
        q.clone(),
        "127.0.0.1:0",
        ServeConfig {
            workers: WORKERS,
            sessions_per_worker: CLIENTS / WORKERS,
            queue_capacity: CLIENTS,
            pool_depth: 0,
            deadlines: generous,
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = server.addr();

    // Sample the protocol-thread population while the fleet is in flight.
    let done = AtomicBool::new(false);
    let peak_threads = AtomicUsize::new(0);
    let peak_active = AtomicUsize::new(0);

    let exact: usize = std::thread::scope(|scope| {
        let monitor = scope.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                if let Some(n) = protocol_threads() {
                    peak_threads.fetch_max(n, Ordering::Relaxed);
                }
                let active = server.metrics().active as usize;
                peak_active.fetch_max(active, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
            }
        });

        let total = (0..CLIENTS)
            .map(|c| {
                let client =
                    ServeClient::new(info.clone()).with_bundles(false).with_deadlines(generous);
                let q = &q;
                scope.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(7000 + c as u64);
                    let input = sample_input(12, c as u64);
                    let expected = q.forward_exact(&input);
                    let (y, _report) = client
                        .run(addr, std::slice::from_ref(&input), &mut rng)
                        .expect("request failed");
                    assert_eq!(y.col(0), expected, "client {c}: logits diverge");
                    1usize
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum();
        done.store(true, Ordering::Relaxed);
        monitor.join().expect("monitor thread");
        total
    });
    assert_eq!(exact, CLIENTS, "every client must complete bit-exact");

    // All sessions really were concurrent on the server — far more live
    // sessions than worker threads at the peak.
    assert!(
        peak_active.load(Ordering::Relaxed) > WORKERS,
        "expected more concurrent sessions than workers, saw {}",
        peak_active.load(Ordering::Relaxed)
    );

    // The multiplexing claim: server-side protocol threads are one
    // acceptor, one supervisor, plus `workers` event loops (no pool at
    // depth 0) — O(workers) even with 64 clients connected at once.
    if let Some(_probe) = protocol_threads() {
        let peak = peak_threads.load(Ordering::Relaxed);
        assert!(peak > 0, "monitor never sampled the thread population");
        assert!(
            peak <= WORKERS + 2,
            "protocol threads must scale with workers, not clients: peak {peak} > {}",
            WORKERS + 2
        );
    }

    // The last client unblocks while its worker is still flushing; give
    // the bookkeeping a moment to settle before asserting on it.
    let settle = std::time::Instant::now();
    while (server.metrics().completed < CLIENTS as u64 || server.metrics().active > 0)
        && settle.elapsed() < Duration::from_secs(5)
    {
        std::thread::sleep(Duration::from_millis(2));
    }

    let m = server.metrics();
    assert_eq!(m.completed, CLIENTS as u64);
    assert_eq!(m.failed, 0);
    assert_eq!(m.rejected, 0, "queue was sized for the whole fleet");
    assert_eq!(m.active, 0);
}
