//! Resilient-session integration tests: silent peers must surface as
//! `TimedOut` (never hang) at every protocol entry point, configuration
//! mismatches must fail negotiation at connect time on both sides, and a
//! mid-online connection loss must be survivable with bit-identical
//! logits via reconnect-and-resume.

use abnn2::core::cnn::PublicCnnInfo;
use abnn2::core::handshake::{handshake_client, SessionParams};
use abnn2::core::inference::{PublicModelInfo, SecureClient, SecureServer};
use abnn2::core::resilient::{ResilientClient, ResilientServer};
use abnn2::core::{ProtocolError, ReluVariant, SessionDeadlines};
use abnn2::gc::{GcError, YaoGarbler};
use abnn2::math::{FragmentScheme, Ring};
use abnn2::net::{
    run_pair, sim_link, Fault, FaultyTransport, NetworkModel, RetryPolicy, TcpTransport, Transport,
};
use abnn2::nn::quant::{QuantConfig, QuantizedDense, QuantizedNetwork};
use abnn2::nn::{ConvShape, Network, QuantizedCnn, QuantizedConv};
use abnn2::ot::{KkChooser, OtError};
use rand::{Rng, SeedableRng};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Connects to a freshly spawned peer that accepts and then stays silent
/// (socket held open, no bytes sent), with a short read timeout applied.
fn silent_peer_transport(read_timeout: Duration) -> TcpTransport {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || {
        if let Ok((sock, _)) = listener.accept() {
            // Hold the connection open, silently, long past any deadline
            // the test uses. The detached thread dies with the process.
            std::thread::sleep(Duration::from_secs(30));
            drop(sock);
        }
    });
    let mut ch = TcpTransport::connect(addr).expect("connect");
    ch.set_read_timeout(Some(read_timeout)).expect("read timeout");
    ch
}

// Two hidden (ReLU) layers so the online phase has server→client traffic
// spread across several messages — a mid-online cut then lands between
// them instead of after the last one.
fn tiny_model(seed: u64) -> QuantizedNetwork {
    let net = Network::new(&[12, 8, 6, 4], seed);
    QuantizedNetwork::quantize(
        &net,
        QuantConfig {
            ring: Ring::new(32),
            frac_bits: 8,
            weight_frac_bits: 2,
            scheme: FragmentScheme::signed_bit_fields(&[2, 2]),
        },
    )
}

const READ_TIMEOUT: Duration = Duration::from_millis(150);
const HARD_CAP: Duration = Duration::from_secs(10);

#[test]
fn silent_peer_times_out_base_ot() {
    let mut ch = silent_peer_transport(READ_TIMEOUT);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let start = Instant::now();
    let err = abnn2::ot::base::recv(&mut ch, &[true], &mut rng).unwrap_err();
    assert_eq!(err, OtError::TimedOut);
    assert!(start.elapsed() < HARD_CAP, "must fail fast, took {:?}", start.elapsed());
}

#[test]
fn silent_peer_times_out_kk13_session() {
    let mut ch = silent_peer_transport(READ_TIMEOUT);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let start = Instant::now();
    let err = KkChooser::setup(&mut ch, &mut rng).unwrap_err();
    assert_eq!(err, OtError::TimedOut);
    assert!(start.elapsed() < HARD_CAP, "must fail fast, took {:?}", start.elapsed());
}

#[test]
fn silent_peer_times_out_yao_session() {
    let mut ch = silent_peer_transport(READ_TIMEOUT);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let start = Instant::now();
    let err = YaoGarbler::setup(&mut ch, &mut rng).unwrap_err();
    assert!(matches!(err, GcError::TimedOut | GcError::Ot(OtError::TimedOut)), "got {err:?}");
    assert!(start.elapsed() < HARD_CAP, "must fail fast, took {:?}", start.elapsed());
}

#[test]
fn silent_peer_times_out_full_inference() {
    let q = tiny_model(4);
    let client = SecureClient::new(PublicModelInfo::from(&q));
    let mut ch = silent_peer_transport(READ_TIMEOUT);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let start = Instant::now();
    let err = client.offline(&mut ch, 1, &mut rng).unwrap_err();
    assert_eq!(err, ProtocolError::TimedOut);
    assert!(start.elapsed() < HARD_CAP, "must fail fast, took {:?}", start.elapsed());
}

#[test]
fn variant_mismatch_fails_negotiation_on_both_sides() {
    let q = tiny_model(6);
    let server = SecureServer::new(q.clone()).with_variant(ReluVariant::Oblivious);
    let client = SecureClient::new(server.public_info()).with_variant(ReluVariant::Optimized);
    let (server_result, client_result, _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            server.offline(ch, 1, &mut rng).map(|_| ())
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(8);
            client.offline(ch, 1, &mut rng).map(|_| ())
        },
    );
    match (server_result.unwrap_err(), client_result.unwrap_err()) {
        (
            ProtocolError::Negotiation { ours: so, theirs: st },
            ProtocolError::Negotiation { ours: co, theirs: ct },
        ) => {
            assert_eq!(so, ct, "server's view must be the client's peer view");
            assert_eq!(co, st, "client's view must be the server's peer view");
            assert_ne!(so.variant, co.variant);
        }
        other => panic!("expected symmetric Negotiation, got {other:?}"),
    }
}

#[test]
fn batch_mismatch_fails_negotiation() {
    let q = tiny_model(9);
    let server = SecureServer::new(q.clone());
    let client = SecureClient::new(server.public_info());
    let (server_result, client_result, _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(10);
            server.offline(ch, 2, &mut rng).map(|_| ())
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(11);
            client.offline(ch, 1, &mut rng).map(|_| ())
        },
    );
    assert!(matches!(server_result, Err(ProtocolError::Negotiation { .. })));
    assert!(matches!(client_result, Err(ProtocolError::Negotiation { .. })));
}

#[test]
fn non_protocol_peer_is_handshake_error() {
    let q = tiny_model(12);
    let server = SecureServer::new(q);
    let (server_result, (), _) = run_pair(
        NetworkModel::instant(),
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(13);
            server.offline(ch, 1, &mut rng).map(|_| ())
        },
        move |ch| {
            ch.send(b"GET / HTTP/1.1\r\nHost: example\r\n\r\n").unwrap();
            let _ = ch.recv();
        },
    );
    assert!(matches!(server_result, Err(ProtocolError::Handshake(_))), "got {server_result:?}");
}

#[test]
fn handshake_rejects_stale_resume_token() {
    // A client presenting a resume token the server has never seen must be
    // answered with "fresh run", not an error.
    let q = tiny_model(14);
    let info = PublicModelInfo::from(&q);
    let ours = SessionParams::for_model(&info, ReluVariant::Oblivious, 1);
    let (mut c, mut s) = abnn2::net::Endpoint::pair(NetworkModel::instant());
    std::thread::scope(|scope| {
        scope.spawn(move || {
            abnn2::core::handshake::handshake_server(&mut s, |_| ours, |_| false).unwrap();
        });
        let accepted = handshake_client(&mut c, ours, &[9; 16], true).unwrap();
        assert!(!accepted, "unknown token must downgrade to a fresh run");
    });
}

/// The headline property: cut the link mid-online-phase, reconnect, resume
/// from the checkpointed offline state, and get logits bit-identical to
/// `forward_exact` — end to end over the dialer/listener reconnect path.
#[test]
fn reconnect_resume_is_bit_identical() {
    let q = tiny_model(15);
    let inputs: Vec<Vec<u64>> = vec![vec![3 << 8, 1 << 8, 7, 250, 0, 9, 1 << 7, 40, 2, 5, 6, 80]];
    let expected = q.forward_exact(&inputs[0]);

    let deadlines = SessionDeadlines::uniform(Duration::from_secs(2));
    let (dialer, listener) = sim_link(NetworkModel::instant());
    let server = ResilientServer::new(SecureServer::new(q))
        .with_policy(RetryPolicy::no_delay(3))
        .with_deadlines(deadlines);
    let client_info = {
        let q2 = tiny_model(15);
        PublicModelInfo::from(&q2)
    };
    let client = ResilientClient::new(SecureClient::new(client_info))
        .with_policy(RetryPolicy::no_delay(3))
        .with_deadlines(deadlines);

    std::thread::scope(|scope| {
        let srv = scope.spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(16);
            server.serve_one_with(
                |_| {
                    listener
                        .accept_timeout(Duration::from_secs(5))
                        .map(|ep| FaultyTransport::new(ep, Fault::None))
                },
                |ch, attempt| {
                    if attempt == 0 {
                        ch.set_fault(Fault::CutAfterMessages(ch.sends() + 2));
                    }
                },
                &mut rng,
            )
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let (y, report) = client.run_raw(|_| dialer.dial(), &inputs, &mut rng).unwrap();
        assert_eq!(y.col(0), expected, "resumed logits must equal forward_exact");
        assert!(report.attempts >= 2 && report.resumed, "got {report:?}");
        let srv_report = srv.join().unwrap().unwrap();
        assert!(srv_report.resumed);
    });
}

/// A small conv→pool→dense CNN: conv out 2×4×4 → pool 2 → 2×2×2 = 8 →
/// dense 8→5→3.
fn tiny_cnn(seed: u64) -> QuantizedCnn {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let scheme = FragmentScheme::signed_bit_fields(&[2, 2]);
    let (lo, hi) = scheme.weight_range();
    let in_shape = ConvShape { channels: 1, height: 6, width: 6 };
    let conv = QuantizedConv {
        out_channels: 2,
        in_shape,
        kh: 3,
        kw: 3,
        stride: 1,
        weights: (0..2 * 9).map(|_| rng.gen_range(lo..=hi)).collect(),
        bias: vec![7, 2],
    };
    let mk_dense = |out_dim: usize, in_dim: usize, rng: &mut rand::rngs::StdRng| QuantizedDense {
        out_dim,
        in_dim,
        weights: (0..out_dim * in_dim).map(|_| rng.gen_range(lo..=hi)).collect(),
        bias: (0..out_dim as u64).collect(),
    };
    let d1 = mk_dense(5, 8, &mut rng);
    let d2 = mk_dense(3, 5, &mut rng);
    QuantizedCnn {
        config: QuantConfig { ring: Ring::new(32), frac_bits: 6, weight_frac_bits: 3, scheme },
        conv,
        pool_window: 2,
        dense: vec![d1, d2],
    }
}

/// The same mid-online cut-and-resume property for a CNN session — new in
/// the graph-executor refactor, which runs CNNs through the same
/// handshake, checkpoint, and resume machinery as MLPs.
#[test]
fn cnn_reconnect_resume_is_bit_identical() {
    let cnn = tiny_cnn(40);
    let ring = cnn.config.ring;
    let mut img_rng = rand::rngs::StdRng::seed_from_u64(41);
    let image: Vec<u64> = (0..cnn.conv.in_shape.len())
        .map(|_| ring.reduce(img_rng.gen_range(0..1u64 << cnn.config.frac_bits)))
        .collect();
    let expected = cnn.forward_exact(&image);

    let deadlines = SessionDeadlines::uniform(Duration::from_secs(2));
    let (dialer, listener) = sim_link(NetworkModel::instant());
    let server = ResilientServer::new(SecureServer::for_model(cnn.clone()))
        .with_policy(RetryPolicy::no_delay(3))
        .with_deadlines(deadlines);
    let client = ResilientClient::new(SecureClient::for_model(PublicCnnInfo::from(&cnn)))
        .with_policy(RetryPolicy::no_delay(3))
        .with_deadlines(deadlines);

    std::thread::scope(|scope| {
        let srv = scope.spawn(move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            server.serve_one_with(
                |_| {
                    listener
                        .accept_timeout(Duration::from_secs(5))
                        .map(|ep| FaultyTransport::new(ep, Fault::None))
                },
                |ch, attempt| {
                    if attempt == 0 {
                        ch.set_fault(Fault::CutAfterMessages(ch.sends() + 2));
                    }
                },
                &mut rng,
            )
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let inputs = vec![image.clone()];
        let (y, report) = client.run_raw(|_| dialer.dial(), &inputs, &mut rng).unwrap();
        assert_eq!(y.col(0), expected, "resumed CNN logits must equal forward_exact");
        assert!(report.attempts >= 2 && report.resumed, "got {report:?}");
        let srv_report = srv.join().unwrap().unwrap();
        assert!(srv_report.resumed);
    });
}

#[test]
fn retry_exhaustion_is_typed_not_a_hang() {
    let q = tiny_model(18);
    let client = ResilientClient::new(SecureClient::new(PublicModelInfo::from(&q)))
        .with_policy(RetryPolicy::no_delay(3))
        .with_deadlines(SessionDeadlines::uniform(READ_TIMEOUT));
    let mut rng = rand::rngs::StdRng::seed_from_u64(19);
    let start = Instant::now();
    let err = client
        .run_raw(|_| Ok(silent_peer_transport(READ_TIMEOUT)), &[vec![0; 12]], &mut rng)
        .unwrap_err();
    assert_eq!(err, ProtocolError::TimedOut);
    assert!(start.elapsed() < HARD_CAP, "took {:?}", start.elapsed());
}
