//! Offline stand-in for the `rand` crate exposing exactly the subset of the
//! API this workspace uses: the `Rng`/`RngCore`/`SeedableRng` traits,
//! `rngs::StdRng`, `gen`, `gen_range`, and `fill_bytes`.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `rand` to this crate. `StdRng` here is xoshiro256++ seeded through
//! SplitMix64 — deterministic and statistically strong, but **not** the same
//! stream as upstream `StdRng` (ChaCha12) and not cryptographically secure.
//! Every test in the workspace derives its expectations from the same seeds
//! it feeds the protocol, so only determinism matters.

/// Low-level source of randomness: the object-safe core trait.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), matching upstream's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::sample(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (u128::sample(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeFrom<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (<$t>::MAX - self.start) as u128 + 1;
                self.start + (u128::sample(rng) % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::sample(rng) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::sample(rng) % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<u128> for core::ops::Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end - self.start;
        self.start + u128::sample(rng) % span
    }
}

impl SampleRange<u128> for core::ops::RangeFrom<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let span = u128::MAX - self.start;
        if span == u128::MAX {
            return u128::sample(rng);
        }
        self.start + u128::sample(rng) % (span + 1)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl Fill for [u64] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for v in self.iter_mut() {
            *v = rng.next_u64();
        }
    }
}

impl<const N: usize> Fill for [u64; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        self.as_mut_slice().fill_from(rng);
    }
}

/// User-facing randomness trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;

    /// Seeds from process-unique entropy (address-space layout + time).
    fn from_entropy() -> Self {
        use std::hash::{BuildHasher, Hasher};
        let h = std::collections::hash_map::RandomState::new().build_hasher();
        Self::seed_from_u64(h.finish())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-128i64..128);
            assert!((-128..128).contains(&v));
            let w = rng.gen_range(1u32..=64);
            assert!((1..=64).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_interval_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
