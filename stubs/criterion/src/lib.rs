//! Offline stand-in for `criterion` covering the subset the bench harness
//! uses: `Criterion::benchmark_group`/`bench_function`, `Bencher::iter`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark runs the closure for a short fixed wall-clock budget and
//! prints mean ns/iter (plus MiB/s or Melem/s when a throughput is set).
//! There is no statistical analysis, warm-up scheduling, or HTML report.

use std::time::{Duration, Instant};

/// Measurement budget per benchmark. Kept short: these benches exist to
/// exercise the code paths and give a rough number, not a rigorous one.
const TARGET: Duration = Duration::from_millis(50);
const MAX_ITERS: u64 = 1000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.to_string(), None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, name),
            self.throughput,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call, then measure until budget or cap.
        std::hint::black_box(f());
        let start = Instant::now();
        let mut n = 0u64;
        loop {
            std::hint::black_box(f());
            n += 1;
            if n >= MAX_ITERS || start.elapsed() >= TARGET {
                break;
            }
        }
        self.iters = n;
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<48} (no measurement)");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let secs_per_iter = ns_per_iter / 1e9;
    let extra = match throughput {
        Some(Throughput::Bytes(bytes)) | Some(Throughput::BytesDecimal(bytes)) => {
            format!(
                "  {:.1} MiB/s",
                bytes as f64 / (1024.0 * 1024.0) / secs_per_iter
            )
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:.2} Melem/s", n as f64 / 1e6 / secs_per_iter)
        }
        None => String::new(),
    };
    println!("{label:<48} {ns_per_iter:>12.0} ns/iter{extra}");
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
