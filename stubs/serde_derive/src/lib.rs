//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The workspace only ever *derives* the serde traits — no serializer crate
//! is in the dependency tree and nothing takes `T: Serialize` bounds — so the
//! derives expand to nothing. The `serde` attribute namespace is accepted and
//! ignored so field/container attributes keep compiling.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
