//! Offline stand-in for `crossbeam`, exposing only `channel::{unbounded,
//! Sender, Receiver}` backed by `std::sync::mpsc`. The workspace uses a
//! single unbounded MPSC pair per direction, which std covers exactly.

pub mod channel {
    use std::sync::mpsc;

    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(41u64).unwrap();
            assert_eq!(rx.recv(), Ok(41));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
