//! Offline stand-in for `serde`: marker traits and re-exported no-op derive
//! macros. The workspace derives `Serialize`/`Deserialize` on config/model
//! types for forward compatibility but never serializes through them (no
//! serializer crate is in the tree), so empty traits suffice.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
