//! Offline stand-in for `proptest` covering the subset this workspace uses:
//! the `proptest!` macro with `name in strategy` / `name: Type` parameters,
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Cases are drawn from a deterministic per-test RNG (seeded from the test's
//! module path), so failures reproduce exactly. There is no shrinking: the
//! panic message carries the concrete failing values via `assert_eq!`.

/// Per-test run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic xoshiro256++ used to drive case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds deterministically from a test identifier (module path + name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the identifier, expanded through SplitMix64.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform f64 in [0, 1).
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Value generator used for `name in strategy` parameters.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty proptest range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u128() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty proptest range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u128() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX - self.start) as u128 + 1;
                self.start + (rng.next_u128() % span) as $t
            }
        }
    )*};
}
impl_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_sint {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty proptest range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u128() % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty proptest range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u128() % span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_sint!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty proptest range");
        self.start + rng.next_u128() % (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeFrom<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        let span = u128::MAX - self.start;
        if span == u128::MAX {
            return rng.next_u128();
        }
        self.start + rng.next_u128() % (span + 1)
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty proptest range");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

/// Types usable as bare `name: Type` proptest parameters.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_unit_f64()
    }
}

/// `any::<T>()` strategy over the full value domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when the assumption fails. Expands to `continue`
/// on the case loop, so it must appear at the top level of the test body
/// (which is how the workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; ) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $crate::__proptest_bind!(__rng, $($params)*);
                $body
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn mixed_params(bits in 1u32..=64, a: u64, w in -128i64..128, sel: bool) {
            prop_assert!(bits >= 1 && bits <= 64);
            prop_assert!((-128..128).contains(&w));
            let _ = (a, sel);
        }

        #[test]
        fn open_range(b in 1u128..) {
            prop_assert!(b >= 1);
        }
    }

    proptest! {
        #[test]
        fn float_range(x in -1.0e4f64..1.0e4) {
            prop_assert!((-1.0e4..1.0e4).contains(&x));
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = super::TestRng::deterministic("x");
        let mut b = super::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
